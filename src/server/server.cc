#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/str_util.h"

namespace cardbench {

namespace {

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(StrFormat("fcntl(O_NONBLOCK): %s",
                                     std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace

/// Per-connection state owned by the event loop.
struct CardServer::Connection {
  uint64_t id = 0;
  int fd = -1;
  FrameReader reader;
  /// Bytes queued for the socket; `out_offset` already sent.
  std::string out;
  size_t out_offset = 0;
  bool http = false;              ///< downgraded to an HTTP metrics probe
  bool close_after_write = false;
  bool closed = false;
};

/// Channel from service-worker callbacks back to the event loop. Shared via
/// shared_ptr so a completion that outlives the server (force-closed drain)
/// lands in a closed hub, not freed memory.
struct CardServer::CompletionHub {
  struct Completion {
    uint64_t conn_id = 0;
    std::string estimator;
    double latency_seconds = 0.0;
    ServerResponse response;
  };

  std::mutex mu;
  std::vector<Completion> ready;
  int wake_fd = -1;  ///< write end of the self-pipe (owned by the hub)
  bool closed = false;

  void Push(Completion completion) {
    bool wake = false;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (closed) return;
      wake = ready.empty();
      ready.push_back(std::move(completion));
    }
    if (wake) {
      const char byte = 'c';
      [[maybe_unused]] ssize_t n = send(wake_fd, &byte, 1, MSG_NOSIGNAL);
    }
  }

  ~CompletionHub() {
    if (wake_fd >= 0) close(wake_fd);
  }
};

CardServer::CardServer(EstimationService& service, const Database& db,
                       ServerOptions options)
    : service_(service),
      executor_(service, db, options.graph_cache_capacity),
      options_(std::move(options)) {
  // Model lifecycle events (incremental refreshes, hot-swaps) flow into the
  // metrics plane, surfacing model_version / refresh-latency / staleness-age
  // through /metrics and the JSON snapshot.
  service_.SetRefreshListener(
      [this](const std::string& name, uint64_t version, double seconds) {
        metrics_.RecordRefresh(name, version, seconds);
      });
}

CardServer::~CardServer() {
  // The listener captures `this`; detach it before the metrics plane dies
  // (the service may outlive the server and keep refreshing).
  service_.SetRefreshListener(nullptr);
  Stop();
}

Status CardServer::Start() {
  if (running_.load()) return Status::AlreadyExists("server already running");

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(StrFormat("socket: %s", std::strerror(errno)));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status = Status::IOError(
        StrFormat("bind %s:%u: %s", options_.host.c_str(), options_.port,
                  std::strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  &addr_len) < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError(StrFormat("getsockname: %s",
                                     std::strerror(errno)));
  }
  port_ = ntohs(addr.sin_port);
  if (listen(listen_fd_, 128) < 0) {
    const Status status =
        Status::IOError(StrFormat("listen: %s", std::strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  CARDBENCH_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  // The wake channel is a socketpair rather than a pipe so that writers can
  // use send(MSG_NOSIGNAL): a wakeup raced against teardown (the loop thread
  // has already closed the read end) then fails with EPIPE instead of
  // raising SIGPIPE.
  int pipe_fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, pipe_fds) < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError(
        StrFormat("socketpair: %s", std::strerror(errno)));
  }
  CARDBENCH_RETURN_IF_ERROR(SetNonBlocking(pipe_fds[0]));
  CARDBENCH_RETURN_IF_ERROR(SetNonBlocking(pipe_fds[1]));
  wake_read_fd_ = pipe_fds[0];
  hub_ = std::make_shared<CompletionHub>();
  hub_->wake_fd = pipe_fds[1];

  shutdown_requested_.store(false);
  running_.store(true);
  loop_thread_ = std::thread([this] { EventLoop(); });
  return Status::OK();
}

void CardServer::NotifyShutdown() {
  shutdown_requested_.store(true, std::memory_order_relaxed);
  // One send(2) on the wake channel: an async-signal-safe wakeup that
  // cannot raise SIGPIPE even after the loop thread tore the channel down.
  if (hub_ != nullptr && hub_->wake_fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] ssize_t n = send(hub_->wake_fd, &byte, 1, MSG_NOSIGNAL);
  }
}

void CardServer::Stop() {
  NotifyShutdown();
  Wait();
}

void CardServer::Wait() {
  if (loop_thread_.joinable()) loop_thread_.join();
}

ServerGauges CardServer::Gauges() const {
  ServerGauges gauges;
  gauges.queue_depth = service_.queue_size();
  gauges.queue_capacity = service_.queue_capacity();
  gauges.in_flight = in_flight_.load();
  gauges.open_connections = open_connections_.load();
  gauges.cache = service_.cache_stats();
  return gauges;
}

void CardServer::EventLoop() {
  Stopwatch uptime;
  bool draining = false;
  Stopwatch drain_watch;

  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_conn;  // conn id per pollfd (0 = wake/listen)

  for (;;) {
    fds.clear();
    fd_conn.clear();
    fds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
    fd_conn.push_back(0);
    if (!draining && listen_fd_ >= 0) {
      fds.push_back(pollfd{listen_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    for (const auto& [id, conn] : connections_) {
      short events = POLLIN;
      if (conn->out_offset < conn->out.size()) events |= POLLOUT;
      fds.push_back(pollfd{conn->fd, events, 0});
      fd_conn.push_back(id);
    }

    int timeout_ms = 500;
    if (options_.snapshot_period_seconds > 0.0) {
      timeout_ms = std::min(
          timeout_ms,
          static_cast<int>(options_.snapshot_period_seconds * 500.0) + 1);
    }
    if (draining) timeout_ms = 10;

    const int ready = poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      CARDBENCH_LOG("cardserved: poll failed: %s", std::strerror(errno));
      break;
    }

    if (fds[0].revents & POLLIN) {
      char sink[256];
      while (read(wake_read_fd_, sink, sizeof(sink)) > 0) {
      }
    }

    DrainCompletions();

    if (shutdown_requested_.load(std::memory_order_relaxed) && !draining) {
      draining = true;
      drain_watch.Reset();
      if (listen_fd_ >= 0) {
        close(listen_fd_);
        listen_fd_ = -1;
      }
      CARDBENCH_LOG("cardserved: draining %zu in-flight request(s), "
                    "%zu connection(s)",
                    in_flight_.load(), connections_.size());
    }

    // Walk the poll results. Index 0 is the wake pipe; the listen socket,
    // when armed, is index 1.
    size_t index = 1;
    if (!draining && listen_fd_ >= 0) {
      if (fds[index].revents & POLLIN) AcceptPending();
      ++index;
    }
    std::vector<uint64_t> to_close;
    for (; index < fds.size(); ++index) {
      auto it = connections_.find(fd_conn[index]);
      if (it == connections_.end()) continue;
      Connection& conn = *it->second;
      if (fds[index].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        conn.closed = true;
      }
      if (!conn.closed && (fds[index].revents & POLLIN)) {
        HandleReadable(conn);
      }
      if (!conn.closed && (fds[index].revents & POLLOUT)) {
        HandleWritable(conn);
      }
      if (conn.closed) to_close.push_back(conn.id);
    }
    for (uint64_t id : to_close) CloseConnection(id);

    MaybeWriteSnapshot(uptime.ElapsedSeconds());

    if (draining) {
      bool writes_pending = false;
      for (const auto& [id, conn] : connections_) {
        if (conn->out_offset < conn->out.size()) {
          writes_pending = true;
          break;
        }
      }
      if (in_flight_.load() == 0 && !writes_pending) break;
      if (drain_watch.ElapsedSeconds() > options_.drain_timeout_seconds) {
        CARDBENCH_LOG("cardserved: drain timeout after %.1fs with %zu "
                      "request(s) in flight; force-closing",
                      options_.drain_timeout_seconds, in_flight_.load());
        break;
      }
    }
  }

  // Teardown (still on the loop thread): close sockets, then close the hub
  // so straggler worker callbacks become no-ops.
  std::vector<uint64_t> ids;
  ids.reserve(connections_.size());
  for (const auto& [id, conn] : connections_) ids.push_back(id);
  for (uint64_t id : ids) CloseConnection(id);
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(hub_->mu);
    hub_->closed = true;
    hub_->ready.clear();
  }
  close(wake_read_fd_);
  wake_read_fd_ = -1;
  running_.store(false);
}

void CardServer::AcceptPending() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      CARDBENCH_LOG("cardserved: accept failed: %s", std::strerror(errno));
      return;
    }
    if (connections_.size() >= options_.max_connections) {
      close(fd);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    metrics_.counters().connections_opened.fetch_add(1);
    open_connections_.fetch_add(1);
    connections_.emplace(conn->id, std::move(conn));
  }
}

void CardServer::HandleReadable(Connection& conn) {
  char buf[64 << 10];
  for (;;) {
    const ssize_t n = recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      metrics_.counters().bytes_read.fetch_add(static_cast<uint64_t>(n));
      conn.reader.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      // Peer closed. Flush what we owe, then close.
      conn.close_after_write = true;
      if (conn.out_offset >= conn.out.size()) conn.closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    conn.closed = true;
    return;
  }

  if (conn.http || conn.reader.LooksLikeHttpGet()) {
    conn.http = true;
    HandleHttp(conn);
    return;
  }

  std::string payload;
  for (;;) {
    const Status next = conn.reader.Next(&payload);
    if (next.code() == StatusCode::kNotFound) break;
    if (!next.ok()) {
      // Framing violation (oversized length): the stream cannot be
      // re-synchronized, so the connection is closed outright.
      metrics_.counters().malformed_frames.fetch_add(1);
      conn.closed = true;
      return;
    }
    DispatchFrame(conn, payload);
    if (conn.closed) return;
  }
}

void CardServer::HandleHttp(Connection& conn) {
  const std::string& buffered = conn.reader.buffer();
  const size_t end = buffered.find("\r\n\r\n");
  if (end == std::string::npos) {
    if (buffered.size() > (16u << 10)) conn.closed = true;  // absurd header
    return;
  }
  metrics_.counters().http_requests.fetch_add(1);
  const size_t line_end = buffered.find("\r\n");
  const std::string request_line = buffered.substr(0, line_end);
  // "GET <path> HTTP/1.x"
  std::string path;
  {
    const size_t sp1 = request_line.find(' ');
    const size_t sp2 =
        sp1 == std::string::npos ? sp1 : request_line.find(' ', sp1 + 1);
    if (sp1 != std::string::npos && sp2 != std::string::npos) {
      path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    }
  }

  std::string body;
  std::string content_type = "text/plain; version=0.0.4";
  int status_code = 200;
  if (path == "/metrics" || path == "/") {
    body = metrics_.RenderText(Gauges());
  } else if (path == "/metrics.json") {
    body = metrics_.RenderJson(Gauges());
    content_type = "application/json";
  } else {
    status_code = 404;
    body = "not found\n";
  }
  std::string response = StrFormat(
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      status_code, status_code == 200 ? "OK" : "Not Found",
      content_type.c_str(), body.size());
  response += body;
  conn.out += response;
  conn.close_after_write = true;
  HandleWritable(conn);
}

void CardServer::DispatchFrame(Connection& conn, const std::string& payload) {
  metrics_.counters().requests_received.fetch_add(1);
  auto decoded = DecodeRequest(payload);
  if (!decoded.ok()) {
    // The stream is still frame-synchronized: answer the error in-band and
    // keep the connection.
    metrics_.counters().malformed_frames.fetch_add(1);
    ServerResponse response;
    response.id = 0;
    response.code = decoded.status().code();
    response.error = decoded.status().message();
    QueueResponse(conn, response);
    return;
  }
  if (shutdown_requested_.load(std::memory_order_relaxed)) {
    metrics_.counters().failed.fetch_add(1);
    ServerResponse response;
    response.id = decoded->id;
    response.code = StatusCode::kUnavailable;
    response.error = "server is draining for shutdown";
    QueueResponse(conn, response);
    return;
  }

  in_flight_.fetch_add(1);
  Stopwatch watch;
  const uint64_t conn_id = conn.id;
  const std::string estimator = decoded->estimator;
  std::shared_ptr<CompletionHub> hub = hub_;
  // The callback runs on a service worker thread for admitted requests and
  // inline on this thread for rejections; both routes converge on the hub,
  // so the poll loop below is the only place that touches connections.
  executor_.ExecuteAsync(
      *decoded,
      [hub, conn_id, estimator, watch](ServerResponse response) {
        CompletionHub::Completion completion;
        completion.conn_id = conn_id;
        completion.estimator = estimator;
        completion.latency_seconds = watch.ElapsedSeconds();
        completion.response = std::move(response);
        hub->Push(std::move(completion));
      });
}

void CardServer::DrainCompletions() {
  std::vector<CompletionHub::Completion> ready;
  {
    std::lock_guard<std::mutex> lock(hub_->mu);
    ready.swap(hub_->ready);
  }
  for (auto& completion : ready) {
    in_flight_.fetch_sub(1);
    switch (completion.response.code) {
      case StatusCode::kOk:
        metrics_.counters().completed.fetch_add(1);
        break;
      case StatusCode::kResourceExhausted:
        metrics_.counters().rejected.fetch_add(1);
        break;
      case StatusCode::kDeadlineExceeded:
        metrics_.counters().deadline_exceeded.fetch_add(1);
        break;
      default:
        metrics_.counters().failed.fetch_add(1);
    }
    metrics_.RecordLatency(completion.estimator,
                           completion.latency_seconds);
    auto it = connections_.find(completion.conn_id);
    if (it == connections_.end()) continue;  // client went away: drop
    QueueResponse(*it->second, completion.response);
    if (it->second->closed) CloseConnection(completion.conn_id);
  }
}

void CardServer::QueueResponse(Connection& conn,
                               const ServerResponse& response) {
  conn.out += EncodeFrame(EncodeResponse(response));
  metrics_.counters().responses_sent.fetch_add(1);
  HandleWritable(conn);  // opportunistic flush; POLLOUT picks up the rest
}

void CardServer::HandleWritable(Connection& conn) {
  while (conn.out_offset < conn.out.size()) {
    const ssize_t n =
        send(conn.fd, conn.out.data() + conn.out_offset,
             conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      metrics_.counters().bytes_written.fetch_add(static_cast<uint64_t>(n));
      conn.out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    conn.closed = true;
    return;
  }
  if (conn.out_offset == conn.out.size()) {
    conn.out.clear();
    conn.out_offset = 0;
    if (conn.close_after_write) conn.closed = true;
  }
}

void CardServer::CloseConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  close(it->second->fd);
  connections_.erase(it);
  metrics_.counters().connections_closed.fetch_add(1);
  open_connections_.fetch_sub(1);
}

void CardServer::MaybeWriteSnapshot(double uptime_seconds) {
  if (options_.snapshot_period_seconds <= 0.0 ||
      options_.snapshot_path.empty()) {
    return;
  }
  if (uptime_seconds - last_snapshot_seconds_ <
      options_.snapshot_period_seconds) {
    return;
  }
  last_snapshot_seconds_ = uptime_seconds;
  const Status status =
      metrics_.WriteJsonSnapshot(options_.snapshot_path, Gauges());
  if (!status.ok()) {
    CARDBENCH_LOG("cardserved: metrics snapshot failed: %s",
                  status.ToString().c_str());
  }
}

}  // namespace cardbench
