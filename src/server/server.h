#ifndef CARDBENCH_SERVER_SERVER_H_
#define CARDBENCH_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "server/metrics.h"
#include "server/protocol.h"
#include "server/request_executor.h"
#include "service/estimation_service.h"
#include "storage/catalog.h"

namespace cardbench {

/// Sizing and behavior knobs of the network server.
struct ServerOptions {
  /// Listen address (loopback by default — cardserved is a benchmark
  /// server, not an internet-facing one).
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Compiled-QueryGraph LRU entries (SQL-text keyed).
  size_t graph_cache_capacity = 512;
  /// Periodic metrics JSON snapshot: every `snapshot_period_seconds` the
  /// event loop rewrites `snapshot_path` (atomic rename). Disabled when the
  /// path is empty or the period is 0.
  std::string snapshot_path;
  double snapshot_period_seconds = 0.0;
  /// Graceful-shutdown drain budget: after NotifyShutdown the loop waits at
  /// most this long for in-flight requests and pending writes before
  /// force-closing (leak-free either way; responses past the budget are
  /// dropped, not leaked).
  double drain_timeout_seconds = 30.0;
  /// Accepted connections beyond this are closed immediately (fd budget).
  size_t max_connections = 1024;
};

/// cardserved: a standalone TCP front-end over the EstimationService.
///
/// One event-loop thread multiplexes every connection with poll() over
/// non-blocking sockets; requests are length-prefixed JSON frames
/// (src/server/protocol.h) that compile to QueryGraphs and fan out to the
/// service's worker pool; completions return to the loop through a
/// self-pipe and are written back on the owning connection. The same port
/// answers plain-text `GET /metrics` (and `/metrics.json`) probes.
///
/// Control flow per request:
///
///   socket bytes -> FrameReader -> DecodeRequest
///     -> RequestExecutor (graph LRU, admission, deadline stamp)
///       -> EstimationService workers -> completion self-pipe
///         -> event loop -> EncodeResponse frame -> socket
///
/// Admission control composes two layers: the service's bounded queue
/// rejects with ResourceExhausted (+ queue depth and retry-after hint in
/// the payload), and the server itself answers Unavailable while draining.
/// Rejections are immediate structured responses — an overloaded server
/// never hangs a client.
///
/// Shutdown: NotifyShutdown() is async-signal-safe (one write(2) to the
/// self-pipe); the loop then stops accepting, rejects new frames, waits for
/// the in-flight requests to complete and their responses to flush, and
/// exits. Stop() additionally joins the loop thread.
class CardServer {
 public:
  /// `service` and `db` are borrowed and must outlive the server.
  CardServer(EstimationService& service, const Database& db,
             ServerOptions options = ServerOptions());
  ~CardServer();

  CardServer(const CardServer&) = delete;
  CardServer& operator=(const CardServer&) = delete;

  /// Binds + listens and starts the event-loop thread. Fails (without a
  /// thread) on bind/listen errors, e.g. an occupied port.
  Status Start();

  /// The bound TCP port (valid after a successful Start; resolves port 0).
  uint16_t port() const { return port_; }

  /// Async-signal-safe shutdown trigger: safe to call from a SIGTERM
  /// handler. The event loop drains and exits; it does not block.
  void NotifyShutdown();

  /// NotifyShutdown + join. Idempotent; the destructor calls it.
  void Stop();

  /// Blocks until the event loop exits (signal-driven servers park their
  /// main thread here).
  void Wait();

  /// True between a successful Start and loop exit.
  bool running() const { return running_.load(); }

  ServerMetrics& metrics() { return metrics_; }
  const ServerMetrics& metrics() const { return metrics_; }

  /// Requests admitted to the service whose responses have not been
  /// delivered to a connection buffer yet.
  size_t in_flight() const { return in_flight_.load(); }

  /// Point-in-time gauge set for rendering (queue, cache, connections).
  ServerGauges Gauges() const;

 private:
  struct Connection;
  struct CompletionHub;

  void EventLoop();
  void AcceptPending();
  void HandleReadable(Connection& conn);
  void HandleWritable(Connection& conn);
  void HandleHttp(Connection& conn);
  void DispatchFrame(Connection& conn, const std::string& payload);
  void QueueResponse(Connection& conn, const ServerResponse& response);
  void DrainCompletions();
  void CloseConnection(uint64_t conn_id);
  void MaybeWriteSnapshot(double uptime_seconds);

  EstimationService& service_;
  RequestExecutor executor_;
  ServerOptions options_;
  ServerMetrics metrics_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<size_t> in_flight_{0};
  std::atomic<size_t> open_connections_{0};

  /// Completion state shared with service-worker callbacks. A shared_ptr
  /// so a callback completing after the server object died (force-close
  /// path) lands in a closed hub instead of freed memory.
  std::shared_ptr<CompletionHub> hub_;

  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 1;
  double last_snapshot_seconds_ = 0.0;

  std::thread loop_thread_;
};

}  // namespace cardbench

#endif  // CARDBENCH_SERVER_SERVER_H_
