#include "service/estimate_cache.h"

#include <algorithm>

#include "common/str_util.h"

namespace cardbench {

size_t SubplanEstimateCache::KeyHash::operator()(
    const SubplanCacheKey& key) const {
  // FNV over the estimator name mixed with the query fingerprint and the
  // mask — no per-lookup string hashing of the query anymore. Stable across
  // runs so shard assignment (and therefore contention patterns) is
  // reproducible.
  uint64_t h = Fnv1aHash(key.estimator) * 31 + key.fingerprint;
  h ^= key.subplan_mask + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h ^= key.model_version + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return static_cast<size_t>(h);
}

SubplanEstimateCache::SubplanEstimateCache(size_t capacity, size_t num_shards) {
  const size_t shards = std::max<size_t>(1, num_shards);
  per_shard_capacity_ = std::max<size_t>(1, capacity / shards);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SubplanEstimateCache::Shard& SubplanEstimateCache::ShardFor(
    const SubplanCacheKey& key) {
  return *shards_[KeyHash{}(key) % shards_.size()];
}

bool SubplanEstimateCache::Lookup(const SubplanCacheKey& key, double* estimate) {
  const uint64_t current = version();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (it->second->version != current) {
    // Stale under the new data version: reclaim lazily, report a miss.
    shard.lru.erase(it->second);
    shard.map.erase(it);
    invalidated_hits_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Touch: move to the front of the LRU list.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *estimate = it->second->estimate;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void SubplanEstimateCache::Insert(const SubplanCacheKey& key, double estimate) {
  const uint64_t current = version();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->estimate = estimate;
    it->second->version = current;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, estimate, current});
  shard.map[key] = shard.lru.begin();
  if (shard.lru.size() > per_shard_capacity_) {
    shard.map.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

size_t SubplanEstimateCache::LookupBatch(
    const std::vector<SubplanCacheKey>& keys, std::vector<double>* estimates,
    std::vector<bool>* hit) {
  const uint64_t current = version();
  estimates->assign(keys.size(), 0.0);
  hit->assign(keys.size(), false);
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    by_shard[KeyHash{}(keys[i]) % shards_.size()].push_back(i);
  }
  size_t num_hits = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidated = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (size_t i : by_shard[s]) {
      auto it = shard.map.find(keys[i]);
      if (it == shard.map.end()) {
        ++misses;
        continue;
      }
      if (it->second->version != current) {
        shard.lru.erase(it->second);
        shard.map.erase(it);
        ++invalidated;
        ++misses;
        continue;
      }
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      (*estimates)[i] = it->second->estimate;
      (*hit)[i] = true;
      ++hits;
      ++num_hits;
    }
  }
  if (hits) hits_.fetch_add(hits, std::memory_order_relaxed);
  if (misses) misses_.fetch_add(misses, std::memory_order_relaxed);
  if (invalidated) {
    invalidated_hits_.fetch_add(invalidated, std::memory_order_relaxed);
  }
  return num_hits;
}

void SubplanEstimateCache::InsertBatch(
    const std::vector<SubplanCacheKey>& keys,
    const std::vector<double>& estimates) {
  const uint64_t current = version();
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    by_shard[KeyHash{}(keys[i]) % shards_.size()].push_back(i);
  }
  uint64_t evictions = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (size_t i : by_shard[s]) {
      auto it = shard.map.find(keys[i]);
      if (it != shard.map.end()) {
        it->second->estimate = estimates[i];
        it->second->version = current;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        continue;
      }
      shard.lru.push_front(Entry{keys[i], estimates[i], current});
      shard.map[keys[i]] = shard.lru.begin();
      if (shard.lru.size() > per_shard_capacity_) {
        shard.map.erase(shard.lru.back().key);
        shard.lru.pop_back();
        ++evictions;
      }
    }
  }
  if (evictions) evictions_.fetch_add(evictions, std::memory_order_relaxed);
}

EstimateCacheStats SubplanEstimateCache::stats() const {
  EstimateCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.invalidated_hits = invalidated_hits_.load(std::memory_order_relaxed);
  return out;
}

size_t SubplanEstimateCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace cardbench
