#ifndef CARDBENCH_SERVICE_ESTIMATE_CACHE_H_
#define CARDBENCH_SERVICE_ESTIMATE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace cardbench {

/// Identity of one cached sub-plan estimate: which estimator produced it,
/// which workload query it belongs to (the QueryGraph's 64-bit fingerprint
/// — FNV-1a of the query's canonical key, so graph-less requests can form
/// the same key by hashing) and which connected table subset of that query
/// (bitmask, as used by the optimizer's DP and the Q-Error analysis).
struct SubplanCacheKey {
  std::string estimator;
  uint64_t fingerprint = 0;
  uint64_t subplan_mask = 0;
  /// Version of the model that produced the estimate. Hot-swapping a model
  /// bumps this in every new key, so entries computed by the retired
  /// version can never be served for the new one (and vice versa) — the
  /// cache stays linearizable across swaps without a global flush.
  uint64_t model_version = 0;

  bool operator==(const SubplanCacheKey& other) const {
    return subplan_mask == other.subplan_mask &&
           fingerprint == other.fingerprint &&
           model_version == other.model_version &&
           estimator == other.estimator;
  }
};

/// Monotonic counters describing cache effectiveness; the load driver and
/// cardserve report hit rate from a before/after delta.
struct EstimateCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t invalidated_hits = 0;  ///< lookups that found a stale-version entry

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Sharded LRU cache for sub-plan cardinality estimates.
///
/// Concurrency: keys hash onto `num_shards` independent shards, each with
/// its own mutex, LRU list and map — concurrent lookups from the service's
/// worker pool contend only when they collide on a shard.
///
/// Invalidation: the cache carries a data version (an atomic counter).
/// Every entry records the version it was inserted under; BumpVersion
/// (hooked to data updates — appends, estimator retrains) makes every older
/// entry unservable in O(1), and stale entries are reclaimed lazily on
/// touch. This is what keeps `dynamic_updates`-style workloads correct: an
/// estimate computed before an insert batch is never served after it.
class SubplanEstimateCache {
 public:
  /// `capacity` is the total entry budget, split evenly across
  /// `num_shards` shards (each shard holds at least one entry).
  explicit SubplanEstimateCache(size_t capacity, size_t num_shards = 16);

  /// Returns true and writes the estimate if present and current-version.
  bool Lookup(const SubplanCacheKey& key, double* estimate);

  /// Inserts (or refreshes) the estimate under the current version.
  void Insert(const SubplanCacheKey& key, double estimate);

  /// Batch probe: fills hit[i]/estimates[i] for every key, grouping keys by
  /// shard so each shard's mutex is taken at most once per call (instead of
  /// once per key). Per-key semantics (LRU touch, lazy stale reclaim,
  /// stats) are identical to Lookup. Returns the number of hits.
  size_t LookupBatch(const std::vector<SubplanCacheKey>& keys,
                     std::vector<double>* estimates, std::vector<bool>* hit);

  /// Batch fill: Insert for every (key, estimate) pair, one shard lock
  /// acquisition per touched shard.
  void InsertBatch(const std::vector<SubplanCacheKey>& keys,
                   const std::vector<double>& estimates);

  /// Invalidates every entry inserted before this call.
  void BumpVersion() { version_.fetch_add(1, std::memory_order_acq_rel); }

  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  EstimateCacheStats stats() const;

  /// Current live entries across shards (stale entries count until lazily
  /// reclaimed).
  size_t size() const;

  size_t capacity() const { return per_shard_capacity_ * shards_.size(); }

 private:
  struct Entry {
    SubplanCacheKey key;
    double estimate = 0.0;
    uint64_t version = 0;
  };
  struct KeyHash {
    size_t operator()(const SubplanCacheKey& key) const;
  };
  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<SubplanCacheKey, std::list<Entry>::iterator, KeyHash> map;
  };

  Shard& ShardFor(const SubplanCacheKey& key);

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> version_{1};

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidated_hits_{0};
};

}  // namespace cardbench

#endif  // CARDBENCH_SERVICE_ESTIMATE_CACHE_H_
