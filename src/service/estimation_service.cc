#include "service/estimation_service.h"

#include <future>
#include <utility>

#include "common/str_util.h"

namespace cardbench {

EstimationService::EstimationService(ServiceOptions options)
    : options_(options),
      cache_(options.cache_capacity, options.cache_shards),
      queue_(options.queue_depth),
      pool_(options.num_threads) {
  // Each pool thread runs one long-lived drain loop; the pool is sized to
  // options_.num_threads so every worker owns exactly one loop.
  for (size_t i = 0; i < pool_.num_threads(); ++i) {
    (void)pool_.Submit([this] { WorkerLoop(); });
  }
}

EstimationService::~EstimationService() { Shutdown(); }

void EstimationService::RegisterEstimator(
    std::unique_ptr<CardinalityEstimator> estimator) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  estimators_[estimator->name()] = std::move(estimator);
}

const CardinalityEstimator* EstimationService::GetEstimator(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = estimators_.find(name);
  return it == estimators_.end() ? nullptr : it->second.get();
}

Status EstimationService::Submit(EstimateRequest request,
                                 EstimateCallback done) {
  if (request.query == nullptr && request.graph == nullptr) {
    return Status::InvalidArgument(
        "EstimateRequest needs a query or a graph");
  }
  if (!queue_.TryPush(WorkItem{std::move(request), std::move(done)})) {
    return Status::ResourceExhausted(
        StrFormat("estimation queue full (depth %zu) or shut down",
                  queue_.capacity()));
  }
  return Status::OK();
}

Result<double> EstimationService::EstimateSync(const std::string& estimator,
                                               const Query& query,
                                               uint64_t subplan_mask) {
  std::promise<EstimateResponse> promise;
  std::future<EstimateResponse> future = promise.get_future();
  CARDBENCH_RETURN_IF_ERROR(Submit(
      EstimateRequest{estimator, &query, subplan_mask},
      [&promise](EstimateResponse response) {
        promise.set_value(std::move(response));
      }));
  EstimateResponse response = future.get();
  CARDBENCH_RETURN_IF_ERROR(response.status);
  auto it = response.cards.find(subplan_mask);
  if (it == response.cards.end()) {
    return Status::Internal("estimate missing from response");
  }
  return it->second;
}

Result<double> EstimationService::EstimateSync(const std::string& estimator,
                                               const QueryGraph& graph,
                                               uint64_t subplan_mask) {
  std::promise<EstimateResponse> promise;
  std::future<EstimateResponse> future = promise.get_future();
  CARDBENCH_RETURN_IF_ERROR(Submit(
      EstimateRequest{estimator, nullptr, subplan_mask, &graph},
      [&promise](EstimateResponse response) {
        promise.set_value(std::move(response));
      }));
  EstimateResponse response = future.get();
  CARDBENCH_RETURN_IF_ERROR(response.status);
  auto it = response.cards.find(subplan_mask);
  if (it == response.cards.end()) {
    return Status::Internal("estimate missing from response");
  }
  return it->second;
}

Result<std::unordered_map<uint64_t, double>>
EstimationService::EstimateQuerySync(const std::string& estimator,
                                     const QueryGraph& graph) {
  std::promise<EstimateResponse> promise;
  std::future<EstimateResponse> future = promise.get_future();
  CARDBENCH_RETURN_IF_ERROR(Submit(
      EstimateRequest{estimator, nullptr, kAllSubplans, &graph},
      [&promise](EstimateResponse response) {
        promise.set_value(std::move(response));
      }));
  EstimateResponse response = future.get();
  CARDBENCH_RETURN_IF_ERROR(response.status);
  return std::move(response.cards);
}

Result<std::unordered_map<uint64_t, double>>
EstimationService::EstimateQuerySync(const std::string& estimator,
                                     const Query& query) {
  std::promise<EstimateResponse> promise;
  std::future<EstimateResponse> future = promise.get_future();
  CARDBENCH_RETURN_IF_ERROR(Submit(
      EstimateRequest{estimator, &query, kAllSubplans},
      [&promise](EstimateResponse response) {
        promise.set_value(std::move(response));
      }));
  EstimateResponse response = future.get();
  CARDBENCH_RETURN_IF_ERROR(response.status);
  return std::move(response.cards);
}

Status EstimationService::NotifyDataUpdate() {
  // Writer lock: waits out every in-flight estimate and blocks new ones
  // while models refresh — Update() has exclusive access by contract.
  std::unique_lock<std::shared_mutex> quiesce(update_mu_);
  Status first_error = Status::OK();
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (auto& [name, estimator] : estimators_) {
      if (!estimator->SupportsUpdate()) continue;
      Status status = estimator->Update();
      if (!status.ok() && first_error.ok()) first_error = status;
    }
  }
  // Bump even on error: serving estimates from a model in an unknown state
  // is strictly worse than recomputing them.
  cache_.BumpVersion();
  return first_error;
}

void EstimationService::Shutdown() {
  queue_.Close();
  pool_.Shutdown();
}

void EstimationService::WorkerLoop() {
  WorkItem item;
  while (queue_.Pop(&item)) {
    EstimateResponse response;
    {
      std::shared_lock<std::shared_mutex> serving(update_mu_);
      response = Process(item.request);
    }
    if (item.done) item.done(std::move(response));
  }
}

EstimateResponse EstimationService::Process(const EstimateRequest& request) {
  EstimateResponse response;
  const CardinalityEstimator* estimator = GetEstimator(request.estimator);
  if (estimator == nullptr) {
    response.status =
        Status::NotFound("no estimator registered as '" + request.estimator +
                         "'");
    return response;
  }
  if (request.graph != nullptr) {
    // Compiled-IR batch path: every mask of the request is probed against
    // the sharded LRU in one batch (one lock acquisition per shard), only
    // the misses go to the estimator — as one EstimateCards batch — and
    // the fresh estimates are filled back in one batch.
    const QueryGraph& graph = *request.graph;
    std::vector<uint64_t> masks;
    if (request.subplan_mask == kAllSubplans) {
      masks = graph.connected_subsets();
    } else {
      masks.push_back(request.subplan_mask);
    }
    std::vector<SubplanCacheKey> keys;
    keys.reserve(masks.size());
    for (uint64_t mask : masks) {
      keys.push_back(SubplanCacheKey{request.estimator, graph.fingerprint(),
                                     mask});
    }
    std::vector<double> estimates;
    std::vector<bool> hit;
    const size_t hits = cache_.LookupBatch(keys, &estimates, &hit);
    response.cache_hits += hits;
    response.cache_misses += masks.size() - hits;
    if (hits < masks.size()) {
      std::vector<uint64_t> miss_masks;
      std::vector<size_t> miss_idx;
      miss_masks.reserve(masks.size() - hits);
      miss_idx.reserve(masks.size() - hits);
      for (size_t i = 0; i < masks.size(); ++i) {
        if (!hit[i]) {
          miss_masks.push_back(masks[i]);
          miss_idx.push_back(i);
        }
      }
      const std::vector<double> fresh =
          estimator->EstimateCards(graph, miss_masks);
      std::vector<SubplanCacheKey> miss_keys;
      miss_keys.reserve(miss_idx.size());
      for (size_t m = 0; m < miss_idx.size(); ++m) {
        estimates[miss_idx[m]] = fresh[m];
        miss_keys.push_back(keys[miss_idx[m]]);
      }
      cache_.InsertBatch(miss_keys, fresh);
    }
    for (size_t i = 0; i < masks.size(); ++i) {
      response.cards[masks[i]] = estimates[i];
    }
    return response;
  }

  const Query& query = *request.query;
  // Same fingerprint a compiled graph of this query would carry, so graph
  // and graph-less requests share cache entries.
  const uint64_t fingerprint = Fnv1aHash(query.CanonicalKey());

  std::vector<uint64_t> masks;
  if (request.subplan_mask == kAllSubplans) {
    masks = EnumerateConnectedSubsets(query);
  } else {
    masks.push_back(request.subplan_mask);
  }

  for (uint64_t mask : masks) {
    SubplanCacheKey key{request.estimator, fingerprint, mask};
    double estimate = 0.0;
    if (cache_.Lookup(key, &estimate)) {
      ++response.cache_hits;
    } else {
      estimate = mask == query.FullMask()
                     ? estimator->EstimateCard(query)
                     : estimator->EstimateCard(query.Induced(mask));
      cache_.Insert(key, estimate);
      ++response.cache_misses;
    }
    response.cards[mask] = estimate;
  }
  return response;
}

}  // namespace cardbench
