#include "service/estimation_service.h"

#include <algorithm>
#include <future>
#include <utility>

#include "common/str_util.h"

namespace cardbench {
namespace {

/// Masks estimated between two deadline checks of a deadlined request.
/// Small enough that an expired request releases its worker quickly, large
/// enough that batch-native estimators still amortize featurization.
constexpr size_t kDeadlineCheckStride = 8;

}  // namespace

EstimationService::EstimationService(ServiceOptions options)
    : options_(options),
      cache_(options.cache_capacity, options.cache_shards),
      queue_(options.queue_depth),
      pool_(options.num_threads) {
  // Each pool thread runs one long-lived drain loop; the pool is sized to
  // options_.num_threads so every worker owns exactly one loop.
  for (size_t i = 0; i < pool_.num_threads(); ++i) {
    (void)pool_.Submit([this] { WorkerLoop(); });
  }
}

EstimationService::~EstimationService() { Shutdown(); }

void EstimationService::RegisterEstimator(
    std::unique_ptr<CardinalityEstimator> estimator) {
  const std::string name = estimator->name();
  std::unique_lock<std::shared_mutex> lock(registry_mu_);
  RegisteredEstimator& entry = estimators_[name];
  if (entry.estimator != nullptr) retired_.push_back(entry.estimator);
  entry.estimator = std::move(estimator);
  entry.model_version = 1;
  entry.installed_at = Clock::now();
}

const CardinalityEstimator* EstimationService::GetEstimator(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  auto it = estimators_.find(name);
  return it == estimators_.end() ? nullptr : it->second.estimator.get();
}

std::shared_ptr<CardinalityEstimator> EstimationService::Snapshot(
    const std::string& name, uint64_t* model_version) const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  auto it = estimators_.find(name);
  if (it == estimators_.end()) return nullptr;
  *model_version = it->second.model_version;
  return it->second.estimator;
}

void EstimationService::HotSwapEstimator(
    std::unique_ptr<CardinalityEstimator> estimator, uint64_t model_version,
    double refresh_seconds) {
  const std::string name = estimator->name();
  {
    std::unique_lock<std::shared_mutex> lock(registry_mu_);
    RegisteredEstimator& entry = estimators_[name];
    if (entry.estimator != nullptr) retired_.push_back(entry.estimator);
    entry.estimator = std::move(estimator);
    // Versions only move forward, even if the caller hands back a smaller
    // number (e.g. replays an old artifact: it still becomes a new epoch).
    entry.model_version = std::max(entry.model_version + 1, model_version);
    entry.refresh_count += 1;
    entry.last_refresh_seconds = refresh_seconds;
    entry.installed_at = Clock::now();
    entry.full_retrain_required = false;
    model_version = entry.model_version;
  }
  // No cache flush and no quiesce: keys carry the model version, so the
  // new version simply misses into fresh entries while in-flight requests
  // finish against their snapshot of the old one.
  NotifyRefresh(name, model_version, refresh_seconds);
}

Status EstimationService::RefreshIncremental(const InsertionBatch& batch,
                                             RefreshReport* report) {
  // Writer lock: IncrementalUpdate mutates models in place, which needs
  // every in-flight estimate quiesced (same contract as Update()).
  std::unique_lock<std::shared_mutex> quiesce(update_mu_);
  Status first_error = Status::OK();
  struct Refreshed {
    std::string name;
    uint64_t model_version;
    double seconds;
  };
  std::vector<Refreshed> refreshed;
  {
    std::unique_lock<std::shared_mutex> lock(registry_mu_);
    for (auto& [name, entry] : estimators_) {
      RefreshReport::Entry out;
      out.name = name;
      const Clock::time_point start = Clock::now();
      Status status = entry.estimator->IncrementalUpdate(batch);
      out.seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
      out.status = status;
      if (status.ok()) {
        out.incremental = !batch.IsFullRefresh() &&
                          entry.estimator->SupportsIncrementalUpdate();
        entry.model_version =
            std::max(entry.model_version + 1, batch.data_version);
        entry.refresh_count += 1;
        entry.last_refresh_seconds = out.seconds;
        entry.installed_at = Clock::now();
        entry.full_retrain_required = false;
        refreshed.push_back(Refreshed{name, entry.model_version, out.seconds});
      } else if (status.code() == StatusCode::kUnsupported) {
        // Not an error: the model simply has no in-place path for this
        // batch — it serves on, flagged stale until a full retrain swap.
        out.full_retrain_required = true;
        entry.full_retrain_required = true;
      } else if (first_error.ok()) {
        first_error = status;
      }
      out.model_version = entry.model_version;
      if (report != nullptr) report->entries.push_back(std::move(out));
    }
  }
  // Bump even on error: serving estimates from a model in an unknown state
  // is strictly worse than recomputing them.
  cache_.BumpVersion();
  for (const Refreshed& r : refreshed) {
    NotifyRefresh(r.name, r.model_version, r.seconds);
  }
  return first_error;
}

std::vector<EstimationService::EstimatorVersionInfo>
EstimationService::VersionInfo() const {
  std::vector<EstimatorVersionInfo> out;
  const Clock::time_point now = Clock::now();
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  out.reserve(estimators_.size());
  for (const auto& [name, entry] : estimators_) {
    EstimatorVersionInfo info;
    info.name = name;
    info.model_version = entry.model_version;
    info.refresh_count = entry.refresh_count;
    info.last_refresh_seconds = entry.last_refresh_seconds;
    info.staleness_seconds =
        std::chrono::duration<double>(now - entry.installed_at).count();
    info.full_retrain_required = entry.full_retrain_required;
    out.push_back(std::move(info));
  }
  return out;
}

void EstimationService::SetRefreshListener(RefreshListener listener) {
  std::lock_guard<std::mutex> lock(listener_mu_);
  refresh_listener_ = std::move(listener);
}

void EstimationService::NotifyRefresh(const std::string& name,
                                      uint64_t model_version, double seconds) {
  RefreshListener listener;
  {
    std::lock_guard<std::mutex> lock(listener_mu_);
    listener = refresh_listener_;
  }
  if (listener) listener(name, model_version, seconds);
}

Status EstimationService::Submit(EstimateRequest request,
                                 EstimateCallback done) {
  if (request.query == nullptr && request.graph == nullptr) {
    return Status::InvalidArgument(
        "EstimateRequest needs a query or a graph");
  }
  if (request.timeout_seconds < 0.0) {
    return Status::InvalidArgument("negative EstimateRequest timeout");
  }
  WorkItem item{std::move(request), std::move(done)};
  if (item.request.timeout_seconds > 0.0) {
    item.deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(item.request.timeout_seconds));
  }
  // When the queue is full, expired work queued ahead must not hold
  // admission slots: it is purged first (and answered below, on this
  // thread — cheap, no estimator touched), then the push is retried.
  std::vector<WorkItem> purged;
  const Clock::time_point now = Clock::now();
  const bool pushed = queue_.TryPushPurgeExpired(
      std::move(item),
      [now](const WorkItem& queued) { return now > queued.deadline; },
      &purged);
  for (WorkItem& dead : purged) {
    if (!dead.done) continue;
    EstimateResponse response;
    response.status =
        Status::DeadlineExceeded("request deadline expired while queued");
    dead.done(std::move(response));
  }
  if (!pushed) {
    // Structured backpressure: the payload names the observed depth and a
    // retry-after hint, so callers (and the network protocol on top) can
    // shed load intelligently instead of blind-retrying.
    return Status::ResourceExhausted(
        StrFormat("estimation queue full (depth %zu/%zu); retry after "
                  "%.1fms",
                  queue_.size(), queue_.capacity(),
                  SuggestedRetrySeconds() * 1e3));
  }
  return Status::OK();
}

double EstimationService::avg_process_seconds() const {
  const uint64_t requests =
      processed_requests_.load(std::memory_order_relaxed);
  if (requests == 0) return 0.0;
  return static_cast<double>(
             processed_nanos_.load(std::memory_order_relaxed)) *
         1e-9 / static_cast<double>(requests);
}

double EstimationService::SuggestedRetrySeconds() const {
  const double avg = avg_process_seconds();
  const size_t workers = pool_.num_threads();
  // One full-queue drain at the observed service rate, split across the
  // worker pool; 1ms floor before any request has been timed.
  const double drain = avg * static_cast<double>(queue_.capacity()) /
                       static_cast<double>(workers > 0 ? workers : 1);
  return std::clamp(drain, 1e-3, 1.0);
}

Result<double> EstimationService::EstimateSync(const std::string& estimator,
                                               const Query& query,
                                               uint64_t subplan_mask) {
  std::promise<EstimateResponse> promise;
  std::future<EstimateResponse> future = promise.get_future();
  CARDBENCH_RETURN_IF_ERROR(Submit(
      EstimateRequest{estimator, &query, subplan_mask},
      [&promise](EstimateResponse response) {
        promise.set_value(std::move(response));
      }));
  EstimateResponse response = future.get();
  CARDBENCH_RETURN_IF_ERROR(response.status);
  auto it = response.cards.find(subplan_mask);
  if (it == response.cards.end()) {
    return Status::Internal("estimate missing from response");
  }
  return it->second;
}

Result<double> EstimationService::EstimateSync(const std::string& estimator,
                                               const QueryGraph& graph,
                                               uint64_t subplan_mask) {
  std::promise<EstimateResponse> promise;
  std::future<EstimateResponse> future = promise.get_future();
  CARDBENCH_RETURN_IF_ERROR(Submit(
      EstimateRequest{estimator, nullptr, subplan_mask, &graph},
      [&promise](EstimateResponse response) {
        promise.set_value(std::move(response));
      }));
  EstimateResponse response = future.get();
  CARDBENCH_RETURN_IF_ERROR(response.status);
  auto it = response.cards.find(subplan_mask);
  if (it == response.cards.end()) {
    return Status::Internal("estimate missing from response");
  }
  return it->second;
}

Result<std::unordered_map<uint64_t, double>>
EstimationService::EstimateQuerySync(const std::string& estimator,
                                     const QueryGraph& graph) {
  std::promise<EstimateResponse> promise;
  std::future<EstimateResponse> future = promise.get_future();
  CARDBENCH_RETURN_IF_ERROR(Submit(
      EstimateRequest{estimator, nullptr, kAllSubplans, &graph},
      [&promise](EstimateResponse response) {
        promise.set_value(std::move(response));
      }));
  EstimateResponse response = future.get();
  CARDBENCH_RETURN_IF_ERROR(response.status);
  return std::move(response.cards);
}

Result<std::unordered_map<uint64_t, double>>
EstimationService::EstimateQuerySync(const std::string& estimator,
                                     const Query& query) {
  std::promise<EstimateResponse> promise;
  std::future<EstimateResponse> future = promise.get_future();
  CARDBENCH_RETURN_IF_ERROR(Submit(
      EstimateRequest{estimator, &query, kAllSubplans},
      [&promise](EstimateResponse response) {
        promise.set_value(std::move(response));
      }));
  EstimateResponse response = future.get();
  CARDBENCH_RETURN_IF_ERROR(response.status);
  return std::move(response.cards);
}

Status EstimationService::NotifyDataUpdate() {
  // A full-refresh batch: every estimator that supports any update path
  // rebuilds from current data (default IncrementalUpdate forwards to
  // Update()); the rest are flagged, not failed.
  return RefreshIncremental(InsertionBatch{});
}

void EstimationService::Shutdown() {
  queue_.Close();
  pool_.Shutdown();
}

void EstimationService::WorkerLoop() {
  WorkItem item;
  while (queue_.Pop(&item)) {
    EstimateResponse response;
    if (Clock::now() > item.deadline) {
      // Expired while queued: answer without touching an estimator, so an
      // overloaded queue sheds dead work at dequeue speed.
      response.status = Status::DeadlineExceeded(
          "request deadline expired while queued");
    } else {
      const Clock::time_point start = Clock::now();
      {
        std::shared_lock<std::shared_mutex> serving(update_mu_);
        response = Process(item.request, item.deadline);
      }
      processed_requests_.fetch_add(1, std::memory_order_relaxed);
      processed_nanos_.fetch_add(
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - start)
                  .count()),
          std::memory_order_relaxed);
    }
    if (item.done) item.done(std::move(response));
  }
}

EstimateResponse EstimationService::Process(const EstimateRequest& request,
                                            Clock::time_point deadline) {
  EstimateResponse response;
  // One snapshot for the whole request: even if a hot-swap lands mid-way,
  // every estimate (and every cache key) of this response comes from the
  // same model version.
  uint64_t model_version = 0;
  const std::shared_ptr<CardinalityEstimator> snapshot =
      Snapshot(request.estimator, &model_version);
  const CardinalityEstimator* estimator = snapshot.get();
  if (estimator == nullptr) {
    response.status =
        Status::NotFound("no estimator registered as '" + request.estimator +
                         "'");
    return response;
  }
  response.model_version = model_version;
  if (request.graph != nullptr) {
    // Compiled-IR batch path: every mask of the request is probed against
    // the sharded LRU in one batch (one lock acquisition per shard), only
    // the misses go to the estimator — as one EstimateCards batch — and
    // the fresh estimates are filled back in one batch.
    const QueryGraph& graph = *request.graph;
    std::vector<uint64_t> masks;
    if (request.subplan_mask == kAllSubplans) {
      masks = graph.connected_subsets();
    } else {
      masks.push_back(request.subplan_mask);
    }
    std::vector<SubplanCacheKey> keys;
    keys.reserve(masks.size());
    for (uint64_t mask : masks) {
      keys.push_back(SubplanCacheKey{request.estimator, graph.fingerprint(),
                                     mask, model_version});
    }
    std::vector<double> estimates;
    std::vector<bool> hit;
    const size_t hits = cache_.LookupBatch(keys, &estimates, &hit);
    response.cache_hits += hits;
    response.cache_misses += masks.size() - hits;
    if (hits < masks.size()) {
      std::vector<uint64_t> miss_masks;
      std::vector<size_t> miss_idx;
      miss_masks.reserve(masks.size() - hits);
      miss_idx.reserve(masks.size() - hits);
      for (size_t i = 0; i < masks.size(); ++i) {
        if (!hit[i]) {
          miss_masks.push_back(masks[i]);
          miss_idx.push_back(i);
        }
      }
      // Without a deadline the whole miss set goes to the estimator as one
      // batch (maximum GEMM/featurization amortization). With one, the
      // batch is cut into bounded slices with a clock check before each, so
      // an expired request frees its worker after at most one slice. Work
      // finished before expiry is still cached — a retry resumes, not
      // restarts.
      const bool deadlined = deadline != Clock::time_point::max();
      const size_t stride =
          deadlined ? kDeadlineCheckStride : miss_masks.size();
      for (size_t begin = 0; begin < miss_masks.size(); begin += stride) {
        if (deadlined && Clock::now() > deadline) {
          response.status = Status::DeadlineExceeded(StrFormat(
              "deadline expired after %zu of %zu sub-plan estimates", begin,
              miss_masks.size()));
          response.cards.clear();
          return response;
        }
        const size_t count = std::min(stride, miss_masks.size() - begin);
        const std::vector<double> fresh = estimator->EstimateCards(
            graph, std::span<const uint64_t>(miss_masks).subspan(begin,
                                                                 count));
        std::vector<SubplanCacheKey> slice_keys;
        slice_keys.reserve(count);
        for (size_t m = 0; m < count; ++m) {
          estimates[miss_idx[begin + m]] = fresh[m];
          slice_keys.push_back(keys[miss_idx[begin + m]]);
        }
        cache_.InsertBatch(slice_keys, fresh);
      }
    }
    for (size_t i = 0; i < masks.size(); ++i) {
      response.cards[masks[i]] = estimates[i];
    }
    return response;
  }

  const Query& query = *request.query;
  // Same fingerprint a compiled graph of this query would carry, so graph
  // and graph-less requests share cache entries.
  const uint64_t fingerprint = Fnv1aHash(query.CanonicalKey());

  std::vector<uint64_t> masks;
  if (request.subplan_mask == kAllSubplans) {
    masks = EnumerateConnectedSubsets(query);
  } else {
    masks.push_back(request.subplan_mask);
  }

  for (uint64_t mask : masks) {
    if (deadline != Clock::time_point::max() && Clock::now() > deadline) {
      response.status = Status::DeadlineExceeded(
          "deadline expired during sub-plan estimation");
      response.cards.clear();
      return response;
    }
    SubplanCacheKey key{request.estimator, fingerprint, mask, model_version};
    double estimate = 0.0;
    if (cache_.Lookup(key, &estimate)) {
      ++response.cache_hits;
    } else {
      estimate = mask == query.FullMask()
                     ? estimator->EstimateCard(query)
                     : estimator->EstimateCard(query.Induced(mask));
      cache_.Insert(key, estimate);
      ++response.cache_misses;
    }
    response.cards[mask] = estimate;
  }
  return response;
}

}  // namespace cardbench
