#ifndef CARDBENCH_SERVICE_ESTIMATION_SERVICE_H_
#define CARDBENCH_SERVICE_ESTIMATION_SERVICE_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cardest/estimator.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "query/query.h"
#include "query/query_graph.h"
#include "service/estimate_cache.h"
#include "service/request_queue.h"

namespace cardbench {

/// Sizing knobs of the serving layer.
struct ServiceOptions {
  /// Worker threads answering estimation requests.
  size_t num_threads = 4;
  /// Bound of the request queue; Submit rejects with ResourceExhausted
  /// beyond it (never blocks the caller).
  size_t queue_depth = 256;
  /// Total sub-plan estimate cache entries, split across shards.
  size_t cache_capacity = 65536;
  size_t cache_shards = 16;
};

/// In `subplan_mask`, requests estimation of every connected sub-plan of
/// the query (the optimizer's full sub-plan query space, §4.2).
inline constexpr uint64_t kAllSubplans = 0;

/// One estimation request: which estimator, which query, which sub-plan(s).
/// `query` is borrowed — it must outlive the request's completion (workload
/// queries live in the Workload that outlives the replay; the planner's
/// sub-plan queries live for the planning call).
///
/// When `graph` is set (same lifetime contract), workers dispatch through
/// the estimators' mask-based overload and key the cache on the graph's
/// precomputed fingerprint — no sub-query materialization or string hashing
/// on the serving path. `query` may then be null.
struct EstimateRequest {
  std::string estimator;
  const Query* query = nullptr;
  uint64_t subplan_mask = kAllSubplans;
  const QueryGraph* graph = nullptr;
  /// Per-request wall-clock budget in seconds, measured from Submit; 0
  /// disables it. A request whose deadline expires — in the queue or
  /// between estimation batches — completes with DeadlineExceeded instead
  /// of its estimates: workers check the clock when they dequeue and again
  /// between bounded estimation slices, so an expired request never holds a
  /// worker longer than one slice (the serving-layer analogue of the
  /// executor's budget cut-off).
  double timeout_seconds = 0.0;
};

/// The answer. For a single-mask request `cards` has one entry; for
/// kAllSubplans one entry per connected sub-plan, bitmask-keyed exactly
/// like BenchEnv::QueryContext::true_cards.
struct EstimateResponse {
  Status status;
  std::unordered_map<uint64_t, double> cards;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  /// Version of the model that answered (every card in one response comes
  /// from a single version — the registry snapshot is taken once per
  /// request, so a hot-swap mid-request can never mix versions).
  uint64_t model_version = 0;
};

using EstimateCallback = std::function<void(EstimateResponse)>;

/// Outcome of one RefreshIncremental pass, per estimator.
struct RefreshReport {
  struct Entry {
    std::string name;
    Status status;
    /// True when the estimator took the incremental path (vs. falling back
    /// to a full Update or reporting Unsupported).
    bool incremental = false;
    /// The estimator has no path to absorb this batch in place; the caller
    /// should schedule a full retrain + HotSwapEstimator.
    bool full_retrain_required = false;
    double seconds = 0.0;
    uint64_t model_version = 0;
  };
  std::vector<Entry> entries;
};

/// Notified after every model-version change (incremental refresh or
/// hot-swap): estimator name, new model version, refresh wall-clock
/// seconds. Invoked outside the registry lock, possibly concurrently.
using RefreshListener =
    std::function<void(const std::string&, uint64_t, double)>;

/// The concurrent cardinality-estimation serving layer: owns trained
/// estimator instances and answers estimation requests from a fixed-size
/// worker pool behind a bounded request queue, memoizing sub-plan estimates
/// in a sharded, version-invalidated LRU cache.
///
///   callers --TryPush--> RequestQueue --Pop--> ThreadPool workers
///                                                |  SubplanEstimateCache
///                                                +--CardinalityEstimator::EstimateCard (const, shared)
///
/// Concurrency contract: estimators are shared across workers and accessed
/// only through the const, thread-safe EstimateCard path (see the contract
/// in cardest/estimator.h). NotifyDataUpdate is the one exclusive
/// operation: it quiesces workers with a writer lock, runs the estimators'
/// Update() hooks, and bumps the cache version so stale estimates can never
/// be served afterwards.
class EstimationService {
 public:
  explicit EstimationService(ServiceOptions options = ServiceOptions());
  ~EstimationService();

  EstimationService(const EstimationService&) = delete;
  EstimationService& operator=(const EstimationService&) = delete;

  /// Registers `estimator` under its name() at model version 1. Replaces an
  /// existing registration of the same name.
  void RegisterEstimator(std::unique_ptr<CardinalityEstimator> estimator);

  /// Registered estimator lookup (nullptr if absent). The pointer stays
  /// valid until the service is destroyed (hot-swapped versions are
  /// retired, not destroyed).
  const CardinalityEstimator* GetEstimator(const std::string& name) const;

  /// Atomically replaces the model serving `estimator->name()` with a new
  /// version. Readers never block: each in-flight request holds a
  /// shared_ptr snapshot of exactly one version, and cache keys carry the
  /// model version, so concurrent estimates are always answered entirely by
  /// the old or entirely by the new model — never a torn mix. The retired
  /// version stays alive until service destruction. `refresh_seconds` is
  /// the wall-clock the caller spent producing the new version (full
  /// retrain time), reported through the refresh listener and VersionInfo.
  void HotSwapEstimator(std::unique_ptr<CardinalityEstimator> estimator,
                        uint64_t model_version, double refresh_seconds = 0.0);

  /// Quiesces serving and applies `batch` to every registered estimator via
  /// IncrementalUpdate. Per-estimator outcomes land in `report` (if given):
  /// success advances the estimator's model version to
  /// max(current+1, batch.data_version); Unsupported marks
  /// full_retrain_required instead of failing the pass. Returns the first
  /// hard error (after attempting every estimator and bumping the cache
  /// data version).
  Status RefreshIncremental(const InsertionBatch& batch,
                            RefreshReport* report = nullptr);

  /// Per-estimator lifecycle snapshot (registration order not guaranteed).
  struct EstimatorVersionInfo {
    std::string name;
    uint64_t model_version = 0;
    uint64_t refresh_count = 0;
    /// Wall-clock seconds of the most recent refresh / swap build.
    double last_refresh_seconds = 0.0;
    /// Age of the live version: seconds since it was installed.
    double staleness_seconds = 0.0;
    bool full_retrain_required = false;
  };
  std::vector<EstimatorVersionInfo> VersionInfo() const;

  /// Installs the model-version-change listener (pass nullptr to clear).
  void SetRefreshListener(RefreshListener listener);

  /// Enqueues `request`; `done` runs on a worker thread when it completes
  /// (including with a non-OK response status, e.g. unknown estimator).
  /// Returns ResourceExhausted — without invoking `done` — when the queue
  /// is full or the service is shut down.
  Status Submit(EstimateRequest request, EstimateCallback done);

  /// Blocking single sub-plan estimate (convenience over Submit).
  Result<double> EstimateSync(const std::string& estimator, const Query& query,
                              uint64_t subplan_mask);
  Result<double> EstimateSync(const std::string& estimator,
                              const QueryGraph& graph, uint64_t subplan_mask);

  /// Blocking whole-query estimate: every connected sub-plan, one request.
  Result<std::unordered_map<uint64_t, double>> EstimateQuerySync(
      const std::string& estimator, const Query& query);
  Result<std::unordered_map<uint64_t, double>> EstimateQuerySync(
      const std::string& estimator, const QueryGraph& graph);

  /// Data-update hook: quiesces all in-flight estimation, invokes the full
  /// refresh path (Update()) on every estimator that SupportsUpdate, and
  /// invalidates the cache. Equivalent to RefreshIncremental with a
  /// full-refresh batch. Returns the first estimator-update error (after
  /// finishing the rest and always bumping the cache version).
  Status NotifyDataUpdate();

  EstimateCacheStats cache_stats() const { return cache_.stats(); }
  const SubplanEstimateCache& cache() const { return cache_; }
  size_t num_threads() const { return pool_.num_threads(); }
  size_t queue_capacity() const { return queue_.capacity(); }

  /// Requests currently waiting for a worker (point-in-time gauge).
  size_t queue_size() const { return queue_.size(); }

  /// Mean worker-side processing time over the service lifetime, seconds
  /// (0 until the first request completes).
  double avg_process_seconds() const;

  /// Backoff hint attached to queue-full rejections: the time one full
  /// queue drain is expected to take at the current processing rate,
  /// clamped to [1ms, 1s]. Callers that retry sooner will mostly re-collide
  /// with the same full queue.
  double SuggestedRetrySeconds() const;

  /// Stops admission, drains queued requests (their callbacks still run)
  /// and joins the workers. Idempotent; the destructor calls it.
  void Shutdown();

 private:
  using Clock = std::chrono::steady_clock;

  struct WorkItem {
    EstimateRequest request;
    EstimateCallback done;
    /// Absolute deadline stamped at Submit (Clock::time_point::max() when
    /// the request carries no timeout).
    Clock::time_point deadline = Clock::time_point::max();
  };

  /// One entry of the versioned registry: the live model, its version, and
  /// refresh bookkeeping. Swaps replace `estimator` (the old shared_ptr is
  /// retired); incremental refreshes mutate the object in place under the
  /// update_mu_ writer lock and advance `model_version`.
  struct RegisteredEstimator {
    std::shared_ptr<CardinalityEstimator> estimator;
    uint64_t model_version = 1;
    uint64_t refresh_count = 0;
    double last_refresh_seconds = 0.0;
    Clock::time_point installed_at;
    bool full_retrain_required = false;
  };

  void WorkerLoop();
  EstimateResponse Process(const EstimateRequest& request,
                           Clock::time_point deadline);
  /// One coherent (model, version) view for a whole request.
  std::shared_ptr<CardinalityEstimator> Snapshot(const std::string& name,
                                                 uint64_t* model_version)
      const;
  void NotifyRefresh(const std::string& name, uint64_t model_version,
                     double seconds);

  ServiceOptions options_;
  SubplanEstimateCache cache_;
  RequestQueue<WorkItem> queue_;

  /// Lifetime processing-time counters feeding avg_process_seconds().
  std::atomic<uint64_t> processed_requests_{0};
  std::atomic<uint64_t> processed_nanos_{0};

  /// Readers: workers serving estimates. Writer: RefreshIncremental /
  /// NotifyDataUpdate (in-place model mutation needs exclusive access;
  /// hot-swaps don't — they only retire a pointer).
  std::shared_mutex update_mu_;

  mutable std::shared_mutex registry_mu_;
  std::unordered_map<std::string, RegisteredEstimator> estimators_;
  /// Hot-swapped-out models, kept alive so GetEstimator pointers obtained
  /// before a swap stay valid for the service's lifetime.
  std::vector<std::shared_ptr<CardinalityEstimator>> retired_;

  std::mutex listener_mu_;
  RefreshListener refresh_listener_;

  ThreadPool pool_;  // last member: workers must die before queue/registry
};

}  // namespace cardbench

#endif  // CARDBENCH_SERVICE_ESTIMATION_SERVICE_H_
