#include "service/load_driver.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace cardbench {

LoadDriver::LoadDriver(EstimationService& service,
                       std::vector<const Query*> queries)
    : service_(service), queries_(std::move(queries)) {}

LoadDriver::LoadDriver(EstimationService& service,
                       std::vector<const QueryGraph*> graphs)
    : service_(service), graphs_(std::move(graphs)) {}

Result<LoadReport> LoadDriver::Run(const LoadOptions& options) {
  const size_t num_queries =
      graphs_.empty() ? queries_.size() : graphs_.size();
  if (num_queries == 0) {
    return Status::InvalidArgument("load driver has no queries");
  }
  if (options.estimator.empty()) {
    return Status::InvalidArgument("LoadOptions.estimator is empty");
  }
  if (service_.GetEstimator(options.estimator) == nullptr) {
    return Status::NotFound("no estimator registered as '" +
                            options.estimator + "'");
  }

  const size_t total_requests =
      num_queries * std::max<size_t>(1, options.replays);
  const size_t concurrency = std::max<size_t>(1, options.concurrency);
  const EstimateCacheStats before = service_.cache_stats();

  // Work distribution: one shared ticket counter; clients pull the next
  // query index until the replay budget is exhausted (closed loop).
  std::atomic<size_t> next_ticket{0};
  std::atomic<size_t> total_estimates{0};
  std::atomic<size_t> total_rejected{0};
  std::atomic<bool> failed{false};
  Status first_error = Status::OK();
  std::mutex error_mu;

  std::vector<std::vector<double>> client_latencies(concurrency);
  std::vector<std::thread> clients;
  clients.reserve(concurrency);

  Stopwatch wall;
  for (size_t c = 0; c < concurrency; ++c) {
    clients.emplace_back([&, c] {
      std::vector<double>& latencies = client_latencies[c];
      for (;;) {
        const size_t ticket = next_ticket.fetch_add(1);
        if (ticket >= total_requests || failed.load()) return;
        const size_t q = ticket % num_queries;
        Stopwatch request_watch;
        for (;;) {
          auto cards =
              graphs_.empty()
                  ? service_.EstimateQuerySync(options.estimator,
                                               *queries_[q])
                  : service_.EstimateQuerySync(options.estimator,
                                               *graphs_[q]);
          if (cards.ok()) {
            total_estimates.fetch_add(cards->size());
            break;
          }
          if (cards.status().code() == StatusCode::kResourceExhausted) {
            // Backpressure: the queue is full. A closed-loop client yields
            // and retries — load self-adjusts instead of dropping work.
            total_rejected.fetch_add(1);
            std::this_thread::yield();
            continue;
          }
          {
            std::lock_guard<std::mutex> lock(error_mu);
            if (first_error.ok()) first_error = cards.status();
          }
          failed.store(true);
          return;
        }
        latencies.push_back(request_watch.ElapsedSeconds());
      }
    });
  }
  for (auto& client : clients) client.join();
  const double wall_seconds = wall.ElapsedSeconds();

  if (failed.load()) return first_error;

  LoadReport report;
  report.wall_seconds = wall_seconds;
  report.rejected = total_rejected.load();
  report.estimates = total_estimates.load();
  std::vector<double> all_latencies;
  for (const auto& latencies : client_latencies) {
    all_latencies.insert(all_latencies.end(), latencies.begin(),
                         latencies.end());
  }
  report.requests = all_latencies.size();
  report.latency = ComputePercentiles(std::move(all_latencies));

  const EstimateCacheStats after = service_.cache_stats();
  report.cache.hits = after.hits - before.hits;
  report.cache.misses = after.misses - before.misses;
  report.cache.evictions = after.evictions - before.evictions;
  report.cache.invalidated_hits =
      after.invalidated_hits - before.invalidated_hits;
  return report;
}

}  // namespace cardbench
