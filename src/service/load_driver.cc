#include "service/load_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace cardbench {

ServiceEstimateBackend::ServiceEstimateBackend(
    EstimationService& service, std::vector<const Query*> queries)
    : service_(service), queries_(std::move(queries)) {}

ServiceEstimateBackend::ServiceEstimateBackend(
    EstimationService& service, std::vector<const QueryGraph*> graphs)
    : service_(service), graphs_(std::move(graphs)) {}

Status ServiceEstimateBackend::Validate(const std::string& estimator) {
  if (service_.GetEstimator(estimator) == nullptr) {
    return Status::NotFound("no estimator registered as '" + estimator +
                            "'");
  }
  return Status::OK();
}

BackendCallResult ServiceEstimateBackend::EstimateQuery(
    const std::string& estimator, size_t query_index,
    double timeout_seconds) {
  BackendCallResult result;
  if (query_index >= num_queries()) {
    result.status = Status::OutOfRange("query index out of range");
    return result;
  }
  EstimateRequest request;
  request.estimator = estimator;
  request.subplan_mask = kAllSubplans;
  request.timeout_seconds = timeout_seconds;
  if (graphs_.empty()) {
    request.query = queries_[query_index];
  } else {
    request.graph = graphs_[query_index];
  }
  std::promise<EstimateResponse> promise;
  std::future<EstimateResponse> future = promise.get_future();
  const Status submitted =
      service_.Submit(std::move(request), [&promise](EstimateResponse r) {
        promise.set_value(std::move(r));
      });
  if (!submitted.ok()) {
    result.status = submitted;
    return result;
  }
  EstimateResponse response = future.get();
  result.status = std::move(response.status);
  result.estimates = response.cards.size();
  result.cache_hits = response.cache_hits;
  result.cache_misses = response.cache_misses;
  return result;
}

LoadDriver::LoadDriver(EstimationService& service,
                       std::vector<const Query*> queries)
    : owned_backend_(std::make_unique<ServiceEstimateBackend>(
          service, std::move(queries))),
      backend_(*owned_backend_) {}

LoadDriver::LoadDriver(EstimationService& service,
                       std::vector<const QueryGraph*> graphs)
    : owned_backend_(std::make_unique<ServiceEstimateBackend>(
          service, std::move(graphs))),
      backend_(*owned_backend_) {}

LoadDriver::LoadDriver(EstimateBackend& backend) : backend_(backend) {}

Result<LoadReport> LoadDriver::Run(const LoadOptions& options) {
  const size_t num_queries = backend_.num_queries();
  if (num_queries == 0) {
    return Status::InvalidArgument("load driver has no queries");
  }
  if (options.estimator.empty()) {
    return Status::InvalidArgument("LoadOptions.estimator is empty");
  }
  if (options.offered_qps < 0.0 || options.timeout_ms < 0.0) {
    return Status::InvalidArgument("negative offered_qps or timeout_ms");
  }
  CARDBENCH_RETURN_IF_ERROR(backend_.Validate(options.estimator));

  const size_t total_requests =
      num_queries * std::max<size_t>(1, options.replays);
  const size_t concurrency = std::max<size_t>(1, options.concurrency);
  const bool open_loop = options.offered_qps > 0.0;
  const double arrival_interval =
      open_loop ? 1.0 / options.offered_qps : 0.0;
  const double timeout_seconds = options.timeout_ms * 1e-3;
  const EstimateCacheStats before = backend_.cache_stats();

  // Work distribution: one shared ticket counter; clients pull the next
  // query index until the replay budget is exhausted. In open-loop mode
  // the ticket also fixes the request's scheduled arrival time, so the
  // offered rate is independent of completions (no coordinated omission).
  std::atomic<size_t> next_ticket{0};
  std::atomic<size_t> total_estimates{0};
  std::atomic<size_t> total_rejected{0};
  std::atomic<size_t> total_dropped{0};
  std::atomic<size_t> total_timeouts{0};
  std::atomic<bool> failed{false};
  Status first_error = Status::OK();
  std::mutex error_mu;

  std::vector<std::vector<double>> client_latencies(concurrency);
  std::vector<std::thread> clients;
  clients.reserve(concurrency);

  Stopwatch wall;
  for (size_t c = 0; c < concurrency; ++c) {
    clients.emplace_back([&, c] {
      std::vector<double>& latencies = client_latencies[c];
      for (;;) {
        const size_t ticket = next_ticket.fetch_add(1);
        if (ticket >= total_requests || failed.load()) return;
        const size_t q = ticket % num_queries;
        if (open_loop) {
          // Hold to the schedule: request `ticket` departs at
          // ticket * interval, regardless of how earlier ones fared.
          const double depart =
              static_cast<double>(ticket) * arrival_interval;
          for (;;) {
            const double now = wall.ElapsedSeconds();
            if (now >= depart || failed.load()) break;
            std::this_thread::sleep_for(std::chrono::duration<double>(
                std::min(depart - now, 1e-3)));
          }
          if (failed.load()) return;
        }
        Stopwatch request_watch;
        for (;;) {
          BackendCallResult result = backend_.EstimateQuery(
              options.estimator, q, timeout_seconds);
          if (result.status.ok()) {
            total_estimates.fetch_add(result.estimates);
            latencies.push_back(request_watch.ElapsedSeconds());
            break;
          }
          if (result.status.code() == StatusCode::kResourceExhausted) {
            if (open_loop) {
              // Open loop measures shedding: the rejection is the result.
              total_dropped.fetch_add(1);
              break;
            }
            // Closed loop: the queue is full, so yield and retry — load
            // self-adjusts instead of dropping work.
            total_rejected.fetch_add(1);
            std::this_thread::yield();
            continue;
          }
          if (result.status.code() == StatusCode::kDeadlineExceeded) {
            total_timeouts.fetch_add(1);
            break;
          }
          {
            std::lock_guard<std::mutex> lock(error_mu);
            if (first_error.ok()) first_error = result.status;
          }
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  const double wall_seconds = wall.ElapsedSeconds();

  if (failed.load()) return first_error;

  LoadReport report;
  report.wall_seconds = wall_seconds;
  report.rejected = total_rejected.load();
  report.dropped = total_dropped.load();
  report.timeouts = total_timeouts.load();
  report.estimates = total_estimates.load();
  std::vector<double> all_latencies;
  for (const auto& latencies : client_latencies) {
    all_latencies.insert(all_latencies.end(), latencies.begin(),
                         latencies.end());
  }
  report.requests = all_latencies.size();
  report.latency = ComputePercentiles(std::move(all_latencies));

  const EstimateCacheStats after = backend_.cache_stats();
  report.cache.hits = after.hits - before.hits;
  report.cache.misses = after.misses - before.misses;
  report.cache.evictions = after.evictions - before.evictions;
  report.cache.invalidated_hits =
      after.invalidated_hits - before.invalidated_hits;
  return report;
}

}  // namespace cardbench
