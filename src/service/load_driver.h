#ifndef CARDBENCH_SERVICE_LOAD_DRIVER_H_
#define CARDBENCH_SERVICE_LOAD_DRIVER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "metrics/metrics.h"
#include "query/query.h"
#include "service/estimation_service.h"

namespace cardbench {

/// Load-generation knobs.
struct LoadOptions {
  /// Registered estimator to drive.
  std::string estimator;
  /// Client threads. In closed-loop mode each keeps exactly one request in
  /// flight, so offered load self-adjusts to service capacity (no
  /// coordinated-omission inflation in the latency numbers). In open-loop
  /// mode they jointly pace the arrival schedule.
  size_t concurrency = 8;
  /// Passes over the workload. Replays after the first hit the sub-plan
  /// cache — the serving-layer analogue of a plan-cache-warm steady state.
  size_t replays = 1;
  /// Open-loop arrival rate in requests/second; 0 selects closed-loop mode.
  /// Open-loop arrivals follow a fixed schedule independent of completions
  /// (the overload-measurement mode): a backpressure rejection is counted
  /// as dropped and NOT retried, so the report shows how an overloaded
  /// server sheds load instead of hiding it behind retries.
  double offered_qps = 0.0;
  /// Per-request deadline in milliseconds forwarded to the backend; 0
  /// disables it. Expired requests count as `timeouts` in the report.
  double timeout_ms = 0.0;
};

/// Outcome of one load run.
struct LoadReport {
  size_t requests = 0;   ///< completed query-estimation requests
  size_t rejected = 0;   ///< backpressure rejections (closed loop: retried)
  size_t dropped = 0;    ///< open-loop rejections, shed without retry
  size_t timeouts = 0;   ///< requests answered with DeadlineExceeded
  size_t estimates = 0;  ///< sub-plan estimates inside completed requests
  double wall_seconds = 0.0;
  /// Per-request latency distribution over completed requests, in seconds.
  Percentiles latency;
  /// Cache counters accumulated over this run only (delta, not lifetime).
  EstimateCacheStats cache;

  double QueriesPerSecond() const {
    return wall_seconds > 0.0
               ? static_cast<double>(requests) / wall_seconds
               : 0.0;
  }
};

/// Result of one backend call (one whole-query estimation request).
struct BackendCallResult {
  Status status;
  size_t estimates = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
};

/// Transport abstraction under the load driver: an indexed workload plus a
/// blocking "estimate every sub-plan of query i" call. Two implementations
/// exist — ServiceEstimateBackend (in-process, below) and
/// SocketEstimateBackend (wire protocol to cardserved, server/client.h) —
/// so the same driver measures both transports with identical mechanics.
///
/// EstimateQuery must be safe to call from many driver threads at once.
class EstimateBackend {
 public:
  virtual ~EstimateBackend() = default;

  virtual size_t num_queries() const = 0;

  /// Pre-flight check before a run (estimator registered, server
  /// reachable). Failures abort the run before any load is offered.
  virtual Status Validate(const std::string& estimator) = 0;

  /// Estimates every connected sub-plan of query `query_index`, blocking
  /// until the response. `timeout_seconds` (0 = none) is the per-request
  /// deadline. Protocol-level failures (rejection, deadline) come back in
  /// `status` — the call itself reports, it does not retry.
  virtual BackendCallResult EstimateQuery(const std::string& estimator,
                                          size_t query_index,
                                          double timeout_seconds) = 0;

  /// Lifetime cache counters as seen through this backend; the driver
  /// reports per-run deltas of them.
  virtual EstimateCacheStats cache_stats() const = 0;
};

/// In-process backend: submits directly to an EstimationService, either
/// graph-compiled (preferred) or Query-based requests.
class ServiceEstimateBackend : public EstimateBackend {
 public:
  /// `queries`/`graphs` are borrowed and must outlive the backend's use.
  ServiceEstimateBackend(EstimationService& service,
                         std::vector<const Query*> queries);
  ServiceEstimateBackend(EstimationService& service,
                         std::vector<const QueryGraph*> graphs);

  size_t num_queries() const override {
    return graphs_.empty() ? queries_.size() : graphs_.size();
  }
  Status Validate(const std::string& estimator) override;
  BackendCallResult EstimateQuery(const std::string& estimator,
                                  size_t query_index,
                                  double timeout_seconds) override;
  EstimateCacheStats cache_stats() const override {
    return service_.cache_stats();
  }

 private:
  EstimationService& service_;
  std::vector<const Query*> queries_;
  std::vector<const QueryGraph*> graphs_;  // non-empty: graph dispatch
};

/// Workload replayer against an estimation backend: `concurrency` clients
/// round-robin the workload's queries, each requesting estimation of every
/// connected sub-plan of its query (one request = one planner visit to the
/// estimator, the unit the paper times as inference latency). Records
/// throughput and P50/P95/P99 latency — the Figure-3-style practicality
/// numbers, but under concurrent load — in closed-loop (capacity-seeking)
/// or open-loop (fixed offered rate, overload-measuring) mode.
class LoadDriver {
 public:
  /// In-process convenience constructors; `queries`/`graphs` are borrowed
  /// and must outlive Run calls.
  LoadDriver(EstimationService& service, std::vector<const Query*> queries);
  LoadDriver(EstimationService& service,
             std::vector<const QueryGraph*> graphs);

  /// Drives an explicit backend (e.g. SocketEstimateBackend for the
  /// network server). `backend` is borrowed and must outlive Run calls.
  explicit LoadDriver(EstimateBackend& backend);

  /// Runs one load session. Fails fast on the first non-backpressure,
  /// non-deadline error (unknown estimator, transport failure);
  /// backpressure is retried in closed-loop mode and shed in open-loop
  /// mode, never silently ignored.
  Result<LoadReport> Run(const LoadOptions& options);

 private:
  std::unique_ptr<ServiceEstimateBackend> owned_backend_;
  EstimateBackend& backend_;
};

}  // namespace cardbench

#endif  // CARDBENCH_SERVICE_LOAD_DRIVER_H_
