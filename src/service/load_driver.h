#ifndef CARDBENCH_SERVICE_LOAD_DRIVER_H_
#define CARDBENCH_SERVICE_LOAD_DRIVER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "metrics/metrics.h"
#include "query/query.h"
#include "service/estimation_service.h"

namespace cardbench {

/// Load-generation knobs.
struct LoadOptions {
  /// Registered estimator to drive.
  std::string estimator;
  /// Closed-loop clients: each keeps exactly one request in flight, so
  /// offered load self-adjusts to service capacity (no coordinated-omission
  /// inflation in the latency numbers).
  size_t concurrency = 8;
  /// Passes over the workload. Replays after the first hit the sub-plan
  /// cache — the serving-layer analogue of a plan-cache-warm steady state.
  size_t replays = 1;
};

/// Outcome of one load run.
struct LoadReport {
  size_t requests = 0;   ///< completed query-estimation requests
  size_t rejected = 0;   ///< backpressure rejections (retried until served)
  size_t estimates = 0;  ///< sub-plan estimates inside those requests
  double wall_seconds = 0.0;
  /// Per-request latency distribution, in seconds.
  Percentiles latency;
  /// Cache counters accumulated over this run only (delta, not lifetime).
  EstimateCacheStats cache;

  double QueriesPerSecond() const {
    return wall_seconds > 0.0
               ? static_cast<double>(requests) / wall_seconds
               : 0.0;
  }
};

/// Closed-loop workload replayer against an EstimationService: `concurrency`
/// clients round-robin the workload's queries, each requesting estimation
/// of every connected sub-plan of its query (one request = one planner
/// visit to the estimator, the unit the paper times as inference latency).
/// Records throughput and P50/P95/P99 latency — the Figure-3-style
/// practicality numbers, but under concurrent load.
class LoadDriver {
 public:
  /// `queries` are borrowed and must outlive Run calls.
  LoadDriver(EstimationService& service, std::vector<const Query*> queries);

  /// Compiled-IR variant: clients submit the pre-built graphs, exercising
  /// the service's mask-based dispatch and fingerprint-keyed cache.
  /// `graphs` are borrowed and must outlive Run calls.
  LoadDriver(EstimationService& service,
             std::vector<const QueryGraph*> graphs);

  /// Runs one load session. Fails fast on the first non-backpressure error
  /// (unknown estimator, null query); backpressure rejections are counted
  /// and retried, never dropped.
  Result<LoadReport> Run(const LoadOptions& options);

 private:
  EstimationService& service_;
  std::vector<const Query*> queries_;
  std::vector<const QueryGraph*> graphs_;  // non-empty: graph dispatch
};

}  // namespace cardbench

#endif  // CARDBENCH_SERVICE_LOAD_DRIVER_H_
