#ifndef CARDBENCH_SERVICE_REQUEST_QUEUE_H_
#define CARDBENCH_SERVICE_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace cardbench {

/// Bounded multi-producer / multi-consumer queue — the admission-control
/// edge of the estimation service. Producers never block: when the queue is
/// at capacity TryPush fails immediately and the service surfaces a
/// ResourceExhausted status to the caller (reject-with-status backpressure;
/// a planner thread must never be parked indefinitely inside its
/// cardinality provider). Consumers block in Pop until an item arrives or
/// the queue is closed and drained.
template <typename T>
class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Enqueues `item` unless the queue is full or closed. Never blocks.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available (returns true) or the queue is
  /// closed and empty (returns false). Items enqueued before Close are
  /// always drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Rejects future pushes and wakes all blocked consumers. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace cardbench

#endif  // CARDBENCH_SERVICE_REQUEST_QUEUE_H_
