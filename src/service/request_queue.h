#ifndef CARDBENCH_SERVICE_REQUEST_QUEUE_H_
#define CARDBENCH_SERVICE_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace cardbench {

/// Bounded multi-producer / multi-consumer queue — the admission-control
/// edge of the estimation service. Producers never block: when the queue is
/// at capacity TryPush fails immediately and the service surfaces a
/// ResourceExhausted status to the caller (reject-with-status backpressure;
/// a planner thread must never be parked indefinitely inside its
/// cardinality provider). Consumers block in Pop until an item arrives or
/// the queue is closed and drained.
template <typename T>
class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Enqueues `item` unless the queue is full or closed. Never blocks.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Like TryPush, but when the queue is at capacity it first evicts every
  /// queued item for which `expired` returns true — moving them into
  /// `purged` so the caller can answer their deadlines — and then retries
  /// the push. Dead work (a deadline that lapsed while queued) therefore
  /// never costs a live request its admission slot.
  template <typename ExpiredFn>
  bool TryPushPurgeExpired(T item, const ExpiredFn& expired,
                           std::vector<T>* purged) {
    bool pushed = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      if (items_.size() >= capacity_) {
        for (auto it = items_.begin(); it != items_.end();) {
          if (expired(*it)) {
            purged->push_back(std::move(*it));
            it = items_.erase(it);
          } else {
            ++it;
          }
        }
      }
      if (items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      pushed = true;
    }
    ready_.notify_one();
    return pushed;
  }

  /// Blocks until an item is available (returns true) or the queue is
  /// closed and empty (returns false). Items enqueued before Close are
  /// always drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Rejects future pushes and wakes all blocked consumers. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace cardbench

#endif  // CARDBENCH_SERVICE_REQUEST_QUEUE_H_
