#include "storage/catalog.h"

#include "common/logging.h"

namespace cardbench {

Result<Table*> Database::AddTable(const std::string& table_name) {
  if (tables_.count(table_name) > 0) {
    return Status::AlreadyExists("table " + table_name + " already exists");
  }
  auto table = std::make_unique<Table>(table_name);
  Table* ptr = table.get();
  tables_[table_name] = std::move(table);
  table_names_.push_back(table_name);
  return ptr;
}

const Table* Database::FindTable(const std::string& table_name) const {
  auto it = tables_.find(table_name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Table* Database::FindTable(const std::string& table_name) {
  auto it = tables_.find(table_name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table& Database::TableOrDie(const std::string& table_name) const {
  const Table* t = FindTable(table_name);
  CARDBENCH_CHECK(t != nullptr, "no table named %s", table_name.c_str());
  return *t;
}

Table& Database::TableOrDie(const std::string& table_name) {
  Table* t = FindTable(table_name);
  CARDBENCH_CHECK(t != nullptr, "no table named %s", table_name.c_str());
  return *t;
}

Status Database::AddJoinRelation(JoinRelation relation) {
  const Table* lt = FindTable(relation.left_table);
  const Table* rt = FindTable(relation.right_table);
  if (lt == nullptr || rt == nullptr) {
    return Status::NotFound("join relation references unknown table: " +
                            relation.ToString());
  }
  if (!lt->FindColumn(relation.left_column).has_value() ||
      !rt->FindColumn(relation.right_column).has_value()) {
    return Status::NotFound("join relation references unknown column: " +
                            relation.ToString());
  }
  relations_.push_back(std::move(relation));
  return Status::OK();
}

std::vector<JoinRelation> Database::RelationsBetween(
    const std::string& t1, const std::string& t2) const {
  std::vector<JoinRelation> out;
  for (const auto& rel : relations_) {
    if (rel.left_table == t1 && rel.right_table == t2) {
      out.push_back(rel);
    } else if (rel.left_table == t2 && rel.right_table == t1) {
      JoinRelation flipped;
      flipped.left_table = rel.right_table;
      flipped.left_column = rel.right_column;
      flipped.right_table = rel.left_table;
      flipped.right_column = rel.left_column;
      flipped.kind = rel.kind;
      out.push_back(flipped);
    }
  }
  return out;
}

size_t Database::MemoryBytes() const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) total += table->MemoryBytes();
  return total;
}

}  // namespace cardbench
