#ifndef CARDBENCH_STORAGE_CATALOG_H_
#define CARDBENCH_STORAGE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace cardbench {

/// Classification of a join relation in the schema. The paper distinguishes
/// one-to-many primary-key/foreign-key joins from many-to-many
/// foreign-key/foreign-key joins (STATS-CEB exercises both, JOB-LIGHT only
/// PK-FK).
enum class JoinKind : uint8_t {
  kPkFk = 0,  ///< left side is unique (primary key), right side references it
  kFkFk = 1,  ///< both sides are foreign keys into a shared domain
};

/// One edge of the schema join graph (Figure 1 of the paper): an
/// equi-join-able column pair between two tables.
struct JoinRelation {
  std::string left_table;
  std::string left_column;
  std::string right_table;
  std::string right_column;
  JoinKind kind = JoinKind::kPkFk;

  /// "t1.c1 = t2.c2" rendering for EXPLAIN output.
  std::string ToString() const {
    return left_table + "." + left_column + " = " + right_table + "." +
           right_column;
  }
};

/// The database: owns tables and the schema-level join relations between
/// them. All components (workload generator, optimizer, estimators) share a
/// const Database&.
class Database {
 public:
  explicit Database(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Creates an empty table; returns a pointer for column/row population.
  Result<Table*> AddTable(const std::string& table_name);

  /// Table lookup; nullptr if absent.
  const Table* FindTable(const std::string& table_name) const;
  Table* FindTable(const std::string& table_name);

  /// Table lookup that dies on absence (schema validated upfront).
  const Table& TableOrDie(const std::string& table_name) const;
  Table& TableOrDie(const std::string& table_name);

  /// Registers a join relation; both endpoints must exist.
  Status AddJoinRelation(JoinRelation relation);

  /// All registered join relations (schema edges).
  const std::vector<JoinRelation>& join_relations() const { return relations_; }

  /// Join relations between two tables in either orientation. The returned
  /// relations are normalized so that `left_table == t1`.
  std::vector<JoinRelation> RelationsBetween(const std::string& t1,
                                             const std::string& t2) const;

  /// All table names in insertion order.
  const std::vector<std::string>& table_names() const { return table_names_; }

  size_t num_tables() const { return table_names_.size(); }

  /// Sum of per-table memory footprints.
  size_t MemoryBytes() const;

  /// Monotonic data version: starts at 1 (the load-time state) and is
  /// bumped by every applied insertion batch (StreamingInsertFeed /
  /// ApplyInsertions). Models and cache entries are stamped with the
  /// version they were built against, which is what makes "is this model
  /// stale, and by how much?" a well-posed question for the refresh
  /// pipeline. Atomic so metrics threads may read it while a quiesced
  /// update section bumps it.
  uint64_t data_version() const {
    return data_version_.load(std::memory_order_acquire);
  }
  void BumpDataVersion() {
    data_version_.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  std::string name_;
  std::vector<std::string> table_names_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<JoinRelation> relations_;
  std::atomic<uint64_t> data_version_{1};
};

}  // namespace cardbench

#endif  // CARDBENCH_STORAGE_CATALOG_H_
