#include "storage/column.h"

namespace cardbench {

size_t Column::null_count() const {
  size_t n = 0;
  for (uint8_t v : valid_) n += (v == 0);
  return n;
}

std::string ColumnKindName(ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kNumeric: return "numeric";
    case ColumnKind::kCategorical: return "categorical";
    case ColumnKind::kKey: return "key";
    case ColumnKind::kTimestamp: return "timestamp";
  }
  return "unknown";
}

}  // namespace cardbench
