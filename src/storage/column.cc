#include "storage/column.h"

#include <algorithm>

#include "common/simd.h"

namespace cardbench {

namespace {

// The filter kernels live in the shared kernel layer (common/simd.h), which
// mirrors CompareOp's numeric values as simd::Cmp so storage can cast
// without a mapping table. Pin the correspondence here.
static_assert(static_cast<uint8_t>(CompareOp::kEq) ==
              static_cast<uint8_t>(simd::Cmp::kEq));
static_assert(static_cast<uint8_t>(CompareOp::kNeq) ==
              static_cast<uint8_t>(simd::Cmp::kNeq));
static_assert(static_cast<uint8_t>(CompareOp::kLt) ==
              static_cast<uint8_t>(simd::Cmp::kLt));
static_assert(static_cast<uint8_t>(CompareOp::kLe) ==
              static_cast<uint8_t>(simd::Cmp::kLe));
static_assert(static_cast<uint8_t>(CompareOp::kGt) ==
              static_cast<uint8_t>(simd::Cmp::kGt));
static_assert(static_cast<uint8_t>(CompareOp::kGe) ==
              static_cast<uint8_t>(simd::Cmp::kGe));

simd::Cmp ToSimdCmp(CompareOp op) {
  return static_cast<simd::Cmp>(static_cast<uint8_t>(op));
}

}  // namespace

size_t Column::FilterRange(size_t begin, size_t end, CompareOp op, Value value,
                           std::vector<uint32_t>* sel) const {
  end = std::min(end, values_.size());
  if (begin >= end) return 0;
  // Give the kernel the full end - begin capacity it requires, then shrink
  // back to the actual match count.
  const size_t before = sel->size();
  sel->resize(before + (end - begin));
  const size_t count = FilterRangeRaw(begin, end, op, value, sel->data() + before);
  sel->resize(before + count);
  return count;
}

size_t Column::FilterRangeRaw(size_t begin, size_t end, CompareOp op,
                              Value value, uint32_t* out) const {
  end = std::min(end, values_.size());
  if (begin >= end) return 0;
  return simd::Active().filter_range(values_.data(), valid_.data(), begin, end,
                                     ToSimdCmp(op), value, out);
}

size_t Column::FilterRows(uint32_t* rows, size_t n, CompareOp op,
                          Value value) const {
  return simd::Active().filter_rows(values_.data(), valid_.data(), rows, n,
                                    ToSimdCmp(op), value);
}

void Column::Gather(const uint32_t* rows, size_t n, Value* keys,
                    uint8_t* valid) const {
  simd::Active().gather(values_.data(), valid_.data(), rows, n, keys, valid);
}

size_t Column::null_count() const {
  size_t n = 0;
  for (uint8_t v : valid_) n += (v == 0);
  return n;
}

std::string ColumnKindName(ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kNumeric: return "numeric";
    case ColumnKind::kCategorical: return "categorical";
    case ColumnKind::kKey: return "key";
    case ColumnKind::kTimestamp: return "timestamp";
  }
  return "unknown";
}

}  // namespace cardbench
