#include "storage/column.h"

#include <algorithm>

namespace cardbench {

namespace {

template <typename Cmp>
size_t FilterRangeImpl(const Value* values, const uint8_t* valid, size_t begin,
                       size_t end, Value rhs, std::vector<uint32_t>* sel,
                       Cmp cmp) {
  const size_t before = sel->size();
  for (size_t row = begin; row < end; ++row) {
    if (valid[row] && cmp(values[row], rhs)) {
      sel->push_back(static_cast<uint32_t>(row));
    }
  }
  return sel->size() - before;
}

template <typename Cmp>
size_t FilterRowsImpl(const Value* values, const uint8_t* valid, uint32_t* rows,
                      size_t n, Value rhs, Cmp cmp) {
  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t row = rows[i];
    rows[out] = row;
    out += valid[row] && cmp(values[row], rhs) ? 1 : 0;
  }
  return out;
}

/// Dispatches on the comparison operator once, outside the row loop.
template <typename Fn>
auto WithComparator(CompareOp op, Fn fn) {
  switch (op) {
    case CompareOp::kEq:
      return fn([](Value a, Value b) { return a == b; });
    case CompareOp::kNeq:
      return fn([](Value a, Value b) { return a != b; });
    case CompareOp::kLt:
      return fn([](Value a, Value b) { return a < b; });
    case CompareOp::kLe:
      return fn([](Value a, Value b) { return a <= b; });
    case CompareOp::kGt:
      return fn([](Value a, Value b) { return a > b; });
    case CompareOp::kGe:
      return fn([](Value a, Value b) { return a >= b; });
  }
  return fn([](Value, Value) { return false; });
}

}  // namespace

size_t Column::FilterRange(size_t begin, size_t end, CompareOp op, Value value,
                           std::vector<uint32_t>* sel) const {
  end = std::min(end, values_.size());
  if (begin >= end) return 0;
  return WithComparator(op, [&](auto cmp) {
    return FilterRangeImpl(values_.data(), valid_.data(), begin, end, value,
                           sel, cmp);
  });
}

size_t Column::FilterRows(uint32_t* rows, size_t n, CompareOp op,
                          Value value) const {
  return WithComparator(op, [&](auto cmp) {
    return FilterRowsImpl(values_.data(), valid_.data(), rows, n, value, cmp);
  });
}

void Column::Gather(const uint32_t* rows, size_t n, Value* keys,
                    uint8_t* valid) const {
  const Value* values = values_.data();
  const uint8_t* ok = valid_.data();
  for (size_t i = 0; i < n; ++i) {
    keys[i] = values[rows[i]];
    valid[i] = ok[rows[i]];
  }
}

size_t Column::null_count() const {
  size_t n = 0;
  for (uint8_t v : valid_) n += (v == 0);
  return n;
}

std::string ColumnKindName(ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kNumeric: return "numeric";
    case ColumnKind::kCategorical: return "categorical";
    case ColumnKind::kKey: return "key";
    case ColumnKind::kTimestamp: return "timestamp";
  }
  return "unknown";
}

}  // namespace cardbench
