#ifndef CARDBENCH_STORAGE_COLUMN_H_
#define CARDBENCH_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/predicate.h"
#include "storage/value.h"

namespace cardbench {

/// A single nullable column of 64-bit values, stored densely.
/// Columns are append-only; row deletion is handled at the table level by
/// rebuilding (the paper's update experiment only inserts).
class Column {
 public:
  Column(std::string name, ColumnKind kind)
      : name_(std::move(name)), kind_(kind) {}

  const std::string& name() const { return name_; }
  ColumnKind kind() const { return kind_; }

  size_t size() const { return values_.size(); }

  /// Appends a non-NULL value.
  void Append(Value v) {
    values_.push_back(v);
    valid_.push_back(1);
  }

  /// Appends a NULL.
  void AppendNull() {
    values_.push_back(0);
    valid_.push_back(0);
  }

  /// Value at `row`; meaningful only when IsValid(row).
  Value Get(size_t row) const { return values_[row]; }

  /// False iff the value at `row` is NULL.
  bool IsValid(size_t row) const { return valid_[row] != 0; }

  // --- batch kernels -------------------------------------------------------
  // The vectorized execution pipeline evaluates predicates over row ranges
  // and selection vectors in tight loops over the raw value/validity arrays:
  // one dispatch on the operator, no per-row indirection. NULL rows never
  // pass (SQL semantics).

  /// Appends to `*sel` the ids of rows in [begin, end) whose value is
  /// non-NULL and satisfies `op value`, in ascending order. Returns the
  /// number of rows appended.
  size_t FilterRange(size_t begin, size_t end, CompareOp op, Value value,
                     std::vector<uint32_t>* sel) const;

  /// Raw-buffer variant for arena-backed callers: writes the passing row ids
  /// to `out`, which must have capacity for end - begin entries (the SIMD
  /// tiers store up to one full vector past the final count). Returns the
  /// count.
  size_t FilterRangeRaw(size_t begin, size_t end, CompareOp op, Value value,
                        uint32_t* out) const;

  /// Compacts the selection vector `rows[0, n)` in place, keeping (in
  /// order) the ids whose value is non-NULL and satisfies `op value`.
  /// Returns the new count.
  size_t FilterRows(uint32_t* rows, size_t n, CompareOp op, Value value) const;

  /// Bulk accessor for join-key gathering: `keys[i]` receives the value at
  /// `rows[i]` and `valid[i]` its non-NULL flag, for i in [0, n).
  void Gather(const uint32_t* rows, size_t n, Value* keys,
              uint8_t* valid) const;

  /// Raw value vector (includes placeholder 0 at NULL positions). Exposed
  /// for vectorized scans and statistics builders.
  const std::vector<Value>& values() const { return values_; }

  /// Raw validity vector (1 = present, 0 = NULL).
  const std::vector<uint8_t>& validity() const { return valid_; }

  /// Number of NULL entries.
  size_t null_count() const;

  /// Approximate in-memory footprint in bytes.
  size_t MemoryBytes() const {
    return values_.size() * sizeof(Value) + valid_.size();
  }

  void Reserve(size_t n) {
    values_.reserve(n);
    valid_.reserve(n);
  }

 private:
  std::string name_;
  ColumnKind kind_;
  std::vector<Value> values_;
  std::vector<uint8_t> valid_;
};

}  // namespace cardbench

#endif  // CARDBENCH_STORAGE_COLUMN_H_
