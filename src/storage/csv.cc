#include "storage/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace cardbench {

namespace {

const char* KindTag(ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kNumeric: return "num";
    case ColumnKind::kCategorical: return "cat";
    case ColumnKind::kKey: return "key";
    case ColumnKind::kTimestamp: return "ts";
  }
  return "num";
}

Result<ColumnKind> ParseKindTag(std::string_view tag) {
  if (tag == "num") return ColumnKind::kNumeric;
  if (tag == "cat") return ColumnKind::kCategorical;
  if (tag == "key") return ColumnKind::kKey;
  if (tag == "ts") return ColumnKind::kTimestamp;
  return Status::InvalidArgument("unknown column kind tag: " +
                                 std::string(tag));
}

}  // namespace

Status WriteTableCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out << ',';
    out << table.column(c).name() << ':' << KindTag(table.column(c).kind());
  }
  out << '\n';
  for (size_t row = 0; row < table.num_rows(); ++row) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << ',';
      const Column& col = table.column(c);
      if (col.IsValid(row)) out << col.Get(row);
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status ReadTableCsv(Table& table, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::string line;
  if (!std::getline(in, line)) return Status::IOError("empty file: " + path);

  for (const auto& field : Split(line, ',')) {
    const auto parts = Split(field, ':');
    if (parts.size() != 2) {
      return Status::InvalidArgument("bad header field: " + field);
    }
    CARDBENCH_ASSIGN_OR_RETURN(ColumnKind kind, ParseKindTag(parts[1]));
    CARDBENCH_RETURN_IF_ERROR(table.AddColumn(parts[0], kind));
  }

  std::vector<std::optional<Value>> row(table.num_columns());
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = Split(line, ',');
    if (fields.size() != table.num_columns()) {
      return Status::InvalidArgument(
          StrFormat("row width %zu != %zu columns", fields.size(),
                    table.num_columns()));
    }
    for (size_t c = 0; c < fields.size(); ++c) {
      if (fields[c].empty()) {
        row[c] = std::nullopt;
      } else {
        row[c] = static_cast<Value>(std::stoll(fields[c]));
      }
    }
    CARDBENCH_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return Status::OK();
}

}  // namespace cardbench
