#ifndef CARDBENCH_STORAGE_CSV_H_
#define CARDBENCH_STORAGE_CSV_H_

#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace cardbench {

/// Writes `table` to a CSV file. First line is a header of
/// "name:kind" fields; NULLs are empty fields. Intended for exporting the
/// synthetic datasets so external tools can inspect them.
Status WriteTableCsv(const Table& table, const std::string& path);

/// Reads a CSV produced by WriteTableCsv back into `table`, which must be
/// freshly constructed (no columns). The header restores column kinds.
Status ReadTableCsv(Table& table, const std::string& path);

}  // namespace cardbench

#endif  // CARDBENCH_STORAGE_CSV_H_
