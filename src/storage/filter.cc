#include "storage/filter.h"

#include <algorithm>

#include "common/arena.h"

namespace cardbench {

std::vector<CompiledPredicate> CompilePredicates(
    const Table& table, const std::vector<Predicate>& predicates) {
  std::vector<CompiledPredicate> compiled;
  compiled.reserve(predicates.size());
  for (const auto& pred : predicates) {
    compiled.push_back(
        {&table.ColumnByName(pred.column), pred.op, pred.value});
  }
  return compiled;
}

std::vector<CompiledPredicate> CompilePredicatesFor(
    const Table& table, const std::string& table_name,
    const std::vector<Predicate>& predicates) {
  std::vector<CompiledPredicate> compiled;
  for (const auto& pred : predicates) {
    if (pred.table != table_name) continue;
    compiled.push_back(
        {&table.ColumnByName(pred.column), pred.op, pred.value});
  }
  return compiled;
}

size_t FilterRangeConjunction(const std::vector<CompiledPredicate>& predicates,
                              size_t begin, size_t end,
                              std::vector<uint32_t>* sel) {
  if (begin >= end) return 0;
  const size_t base = sel->size();
  if (predicates.empty()) {
    sel->reserve(base + (end - begin));
    for (size_t row = begin; row < end; ++row) {
      sel->push_back(static_cast<uint32_t>(row));
    }
    return end - begin;
  }
  predicates[0].column->FilterRange(begin, end, predicates[0].op,
                                    predicates[0].value, sel);
  for (size_t p = 1; p < predicates.size() && sel->size() > base; ++p) {
    const size_t kept = predicates[p].column->FilterRows(
        sel->data() + base, sel->size() - base, predicates[p].op,
        predicates[p].value);
    sel->resize(base + kept);
  }
  return sel->size() - base;
}

size_t FilterRowsConjunction(const std::vector<CompiledPredicate>& predicates,
                             std::vector<uint32_t>* sel) {
  sel->resize(FilterRowsConjunction(predicates, sel->data(), sel->size()));
  return sel->size();
}

size_t FilterRowsConjunction(const std::vector<CompiledPredicate>& predicates,
                             uint32_t* rows, size_t n) {
  for (const auto& pred : predicates) {
    if (n == 0) break;
    n = pred.column->FilterRows(rows, n, pred.op, pred.value);
  }
  return n;
}

uint64_t CountRangeConjunction(const std::vector<CompiledPredicate>& predicates,
                               size_t begin, size_t end) {
  if (begin >= end) return 0;
  if (predicates.empty()) return end - begin;
  // Batched: the range kernel fills a bounded arena-backed scratch buffer,
  // the remaining predicates refine it, and only the surviving count is
  // kept. The scratch frame unwinds before returning, so steady-state
  // counting allocates zero heap.
  constexpr size_t kCountBatch = 4096;
  uint64_t count = 0;
  ArenaFrame frame(&ThreadLocalArena());
  uint32_t* scratch = frame.arena()->AllocateArray<uint32_t>(kCountBatch);
  for (size_t lo = begin; lo < end; lo += kCountBatch) {
    const size_t hi = std::min(end, lo + kCountBatch);
    size_t kept = predicates[0].column->FilterRangeRaw(
        lo, hi, predicates[0].op, predicates[0].value, scratch);
    for (size_t p = 1; p < predicates.size() && kept > 0; ++p) {
      kept = predicates[p].column->FilterRows(scratch, kept, predicates[p].op,
                                              predicates[p].value);
    }
    count += kept;
  }
  return count;
}

}  // namespace cardbench
