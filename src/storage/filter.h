#ifndef CARDBENCH_STORAGE_FILTER_H_
#define CARDBENCH_STORAGE_FILTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/predicate.h"
#include "storage/table.h"

namespace cardbench {

/// One filter predicate with its column reference resolved: the shared
/// compiled form behind every predicate-evaluation loop in the repo (the
/// executor's scans, TrueCardService's filtered base cardinalities, and the
/// sampling estimators). Resolving names once per operator keeps string
/// lookups out of per-row loops.
struct CompiledPredicate {
  const Column* column = nullptr;
  CompareOp op = CompareOp::kEq;
  Value value = 0;
};

/// Resolves every predicate in `predicates` against `table`. All predicates
/// must name columns of `table` (callers pass plan-node filter lists, which
/// the planner has already scoped); unknown columns die.
std::vector<CompiledPredicate> CompilePredicates(
    const Table& table, const std::vector<Predicate>& predicates);

/// Like CompilePredicates but takes a mixed query-level predicate list and
/// keeps only the predicates on `table_name` (the form estimators see).
std::vector<CompiledPredicate> CompilePredicatesFor(
    const Table& table, const std::string& table_name,
    const std::vector<Predicate>& predicates);

/// Scalar fallback: true iff `row` satisfies every compiled predicate
/// (NULLs never pass). For call sites that test isolated rows (samples,
/// index postings, random walks).
inline bool RowPassesCompiled(const std::vector<CompiledPredicate>& predicates,
                              uint32_t row) {
  for (const auto& p : predicates) {
    if (!p.column->IsValid(row) ||
        !EvalCompare(p.column->Get(row), p.op, p.value)) {
      return false;
    }
  }
  return true;
}

/// Appends to `*sel` the ids of rows in [begin, end) passing every compiled
/// predicate, in ascending order: the first predicate runs as a range kernel
/// producing a selection vector, the rest refine it. Returns the number of
/// rows appended. An empty conjunction admits the whole range.
size_t FilterRangeConjunction(const std::vector<CompiledPredicate>& predicates,
                              size_t begin, size_t end,
                              std::vector<uint32_t>* sel);

/// In-place refinement of the selection vector `*sel` by every compiled
/// predicate, preserving order. Returns the new size.
size_t FilterRowsConjunction(const std::vector<CompiledPredicate>& predicates,
                             std::vector<uint32_t>* sel);

/// Raw-buffer variant for arena-backed callers: refines rows[0, n) in place
/// and returns the surviving count.
size_t FilterRowsConjunction(const std::vector<CompiledPredicate>& predicates,
                             uint32_t* rows, size_t n);

/// Number of rows in [begin, end) passing every compiled predicate, without
/// materializing a selection vector.
uint64_t CountRangeConjunction(const std::vector<CompiledPredicate>& predicates,
                               size_t begin, size_t end);

}  // namespace cardbench

#endif  // CARDBENCH_STORAGE_FILTER_H_
