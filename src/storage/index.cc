#include "storage/index.h"

namespace cardbench {

const std::vector<uint32_t> HashIndex::kEmpty;

HashIndex::HashIndex(const Column& column) {
  map_.reserve(column.size());
  for (size_t row = 0; row < column.size(); ++row) {
    if (!column.IsValid(row)) continue;
    map_[column.Get(row)].push_back(static_cast<uint32_t>(row));
    ++num_entries_;
  }
}

const std::vector<uint32_t>& HashIndex::Lookup(Value v) const {
  auto it = map_.find(v);
  if (it == map_.end()) return kEmpty;
  return it->second;
}

}  // namespace cardbench
