#ifndef CARDBENCH_STORAGE_INDEX_H_
#define CARDBENCH_STORAGE_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "storage/column.h"

namespace cardbench {

/// Hash index from column value to the sorted list of row ids holding it.
/// NULLs are not indexed (SQL equi-join semantics: NULL joins nothing).
/// Used by index scans, index-nested-loop joins, wander-join sampling and
/// fanout-column construction. Keyed by the shared 64-bit finalizer hash
/// (common/hash.h) — the same function the radix join derives its
/// partition/slot/tag bits from — instead of std::hash's identity mapping,
/// which clumps the sequential key columns this index mostly serves.
class HashIndex {
 public:
  /// Builds the index over `column` in one pass.
  explicit HashIndex(const Column& column);

  /// Row ids whose value equals `v` (empty vector if none).
  const std::vector<uint32_t>& Lookup(Value v) const;

  /// Number of distinct indexed values.
  size_t num_distinct() const { return map_.size(); }

  /// Total indexed (non-NULL) entries.
  size_t num_entries() const { return num_entries_; }

  /// Map type: value-keyed postings under the shared finalizer hash.
  using Map = std::unordered_map<Value, std::vector<uint32_t>, ValueHash64>;

  /// Iteration over (value, row ids) pairs, e.g. for degree statistics.
  /// Iteration order is unspecified; callers must be order-insensitive.
  const Map& entries() const { return map_; }

 private:
  Map map_;
  size_t num_entries_ = 0;
  static const std::vector<uint32_t> kEmpty;
};

}  // namespace cardbench

#endif  // CARDBENCH_STORAGE_INDEX_H_
