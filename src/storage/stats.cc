#include "storage/stats.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>

namespace cardbench {

namespace {

/// Skewness (third standardized moment) of a sample given sum statistics.
double SkewFromMoments(double n, double sum, double sum2, double sum3) {
  if (n < 3) return 0.0;
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  if (var <= 1e-12) return 0.0;
  const double m3 = sum3 / n - 3 * mean * sum2 / n + 2 * mean * mean * mean;
  return m3 / std::pow(var, 1.5);
}

bool IsFilterable(const Column& col) {
  return col.kind() == ColumnKind::kNumeric ||
         col.kind() == ColumnKind::kCategorical;
}

}  // namespace

ColumnStats ComputeColumnStats(const Column& column) {
  ColumnStats stats;
  stats.row_count = column.size();
  stats.null_count = column.null_count();

  double sum = 0, sum2 = 0, sum3 = 0;
  double n = 0;
  bool first = true;
  std::unordered_map<Value, size_t> freqs;
  for (size_t row = 0; row < column.size(); ++row) {
    if (!column.IsValid(row)) continue;
    const Value v = column.Get(row);
    const double d = static_cast<double>(v);
    if (first) {
      stats.min = stats.max = v;
      first = false;
    } else {
      stats.min = std::min(stats.min, v);
      stats.max = std::max(stats.max, v);
    }
    sum += d;
    sum2 += d * d;
    sum3 += d * d * d;
    n += 1;
    ++freqs[v];
  }
  stats.num_distinct = freqs.size();
  if (n > 0) {
    stats.mean = sum / n;
    const double var = sum2 / n - stats.mean * stats.mean;
    stats.stddev = var > 0 ? std::sqrt(var) : 0.0;
  }
  if (column.kind() == ColumnKind::kCategorical) {
    // Frequency skew: how unevenly probability mass spreads over the domain.
    double fs = 0, fs2 = 0, fs3 = 0, fn = 0;
    for (const auto& [value, count] : freqs) {
      const double c = static_cast<double>(count);
      fs += c;
      fs2 += c * c;
      fs3 += c * c * c;
      fn += 1;
    }
    stats.skewness = SkewFromMoments(fn, fs, fs2, fs3);
  } else {
    stats.skewness = SkewFromMoments(n, sum, sum2, sum3);
  }
  return stats;
}

std::unordered_map<Value, size_t> ValueFrequencies(const Column& column) {
  std::unordered_map<Value, size_t> freqs;
  for (size_t row = 0; row < column.size(); ++row) {
    if (column.IsValid(row)) ++freqs[column.Get(row)];
  }
  return freqs;
}

double PearsonCorrelation(const Column& a, const Column& b) {
  const size_t n_rows = std::min(a.size(), b.size());
  double n = 0, sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
  for (size_t row = 0; row < n_rows; ++row) {
    if (!a.IsValid(row) || !b.IsValid(row)) continue;
    const double x = static_cast<double>(a.Get(row));
    const double y = static_cast<double>(b.Get(row));
    n += 1;
    sa += x;
    sb += y;
    saa += x * x;
    sbb += y * y;
    sab += x * y;
  }
  if (n < 2) return 0.0;
  const double cov = sab / n - (sa / n) * (sb / n);
  const double va = saa / n - (sa / n) * (sa / n);
  const double vb = sbb / n - (sb / n) * (sb / n);
  if (va <= 1e-12 || vb <= 1e-12) return 0.0;
  return cov / std::sqrt(va * vb);
}

double AveragePairwiseCorrelation(const Database& db) {
  double total = 0.0;
  size_t pairs = 0;
  for (const auto& name : db.table_names()) {
    const Table& table = db.TableOrDie(name);
    std::vector<size_t> filterable;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (IsFilterable(table.column(c))) filterable.push_back(c);
    }
    for (size_t i = 0; i < filterable.size(); ++i) {
      for (size_t j = i + 1; j < filterable.size(); ++j) {
        total += std::abs(PearsonCorrelation(table.column(filterable[i]),
                                             table.column(filterable[j])));
        ++pairs;
      }
    }
  }
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

double AverageDistributionSkewness(const Database& db) {
  double total = 0.0;
  size_t count = 0;
  for (const auto& name : db.table_names()) {
    const Table& table = db.TableOrDie(name);
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (!IsFilterable(table.column(c))) continue;
      total += std::abs(ComputeColumnStats(table.column(c)).skewness);
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

size_t TotalAttributeDomainSize(const Database& db) {
  size_t total = 0;
  for (const auto& name : db.table_names()) {
    const Table& table = db.TableOrDie(name);
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (!IsFilterable(table.column(c))) continue;
      total += ComputeColumnStats(table.column(c)).num_distinct;
    }
  }
  return total;
}

size_t NumFilterableAttributes(const Database& db) {
  size_t total = 0;
  for (const auto& name : db.table_names()) {
    const Table& table = db.TableOrDie(name);
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (IsFilterable(table.column(c))) ++total;
    }
  }
  return total;
}

double EstimateFullOuterJoinSize(const Database& db) {
  // Exact full-outer-join size over a BFS spanning tree of the schema graph
  // (non-tree edges are dropped, making this a lower bound for cyclic
  // schemas). Computed bottom-up: each row carries the number of result
  // tuples its subtree contributes, and a parent row multiplies
  // max(1, sum of matching child weights) over its child edges — the
  // product captures the combinatorial blow-up when one key is hot in
  // several child tables at once, which is what makes STATS's FOJ four
  // orders of magnitude larger than IMDB's (Table 1).
  if (db.num_tables() == 0) return 0.0;
  std::string root = db.table_names()[0];
  for (const auto& name : db.table_names()) {
    if (db.TableOrDie(name).num_rows() > db.TableOrDie(root).num_rows()) {
      root = name;
    }
  }

  // Build the BFS tree: children[t] = (child table, relation t<->child).
  std::set<std::string> visited = {root};
  std::queue<std::string> frontier;
  frontier.push(root);
  std::unordered_map<std::string, std::vector<JoinRelation>> children;
  std::vector<std::string> bfs_order = {root};
  while (!frontier.empty()) {
    const std::string parent = frontier.front();
    frontier.pop();
    for (const auto& name : db.table_names()) {
      if (visited.count(name) > 0) continue;
      const auto rels = db.RelationsBetween(parent, name);
      if (rels.empty()) continue;
      children[parent].push_back(rels.front());  // left side == parent
      visited.insert(name);
      bfs_order.push_back(name);
      frontier.push(name);
    }
  }

  // Bottom-up pass in reverse BFS order.
  std::unordered_map<std::string, std::vector<double>> weights;
  for (auto it = bfs_order.rbegin(); it != bfs_order.rend(); ++it) {
    const std::string& name = *it;
    const Table& table = db.TableOrDie(name);
    std::vector<double> w(table.num_rows(), 1.0);
    for (const auto& rel : children[name]) {
      const Table& child = db.TableOrDie(rel.right_table);
      const Column& child_key = child.ColumnByName(rel.right_column);
      const std::vector<double>& child_w = weights.at(rel.right_table);
      std::unordered_map<Value, double> sums;
      for (size_t row = 0; row < child.num_rows(); ++row) {
        if (child_key.IsValid(row)) sums[child_key.Get(row)] += child_w[row];
      }
      const Column& parent_key = table.ColumnByName(rel.left_column);
      for (size_t row = 0; row < table.num_rows(); ++row) {
        double sum = 0.0;
        if (parent_key.IsValid(row)) {
          auto sit = sums.find(parent_key.Get(row));
          if (sit != sums.end()) sum = sit->second;
        }
        w[row] *= std::max(1.0, sum);
      }
    }
    weights[name] = std::move(w);
  }

  double total = 0.0;
  for (double w : weights.at(root)) total += w;
  return total;
}

}  // namespace cardbench
