#ifndef CARDBENCH_STORAGE_STATS_H_
#define CARDBENCH_STORAGE_STATS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/catalog.h"
#include "storage/column.h"

namespace cardbench {

/// Summary statistics of one column, shared by the PostgreSQL-style
/// estimator, the dataset-characterization bench (paper Table 1) and the
/// data generators' self-checks.
struct ColumnStats {
  size_t row_count = 0;
  size_t null_count = 0;
  size_t num_distinct = 0;
  Value min = 0;
  Value max = 0;
  double mean = 0.0;
  double stddev = 0.0;
  /// Third standardized moment of the value distribution (numeric columns)
  /// or of the per-value frequency distribution (categorical columns). The
  /// paper's "average distribution skewness" (Table 1) averages |skewness|
  /// over all filterable attributes.
  double skewness = 0.0;
};

/// Computes full statistics over `column` in one pass (two for moments).
ColumnStats ComputeColumnStats(const Column& column);

/// Per-value frequencies of the non-NULL entries.
std::unordered_map<Value, size_t> ValueFrequencies(const Column& column);

/// Pearson correlation of two columns over rows where both are non-NULL.
/// Returns 0 for degenerate (constant) columns.
double PearsonCorrelation(const Column& a, const Column& b);

/// Mean |pairwise Pearson correlation| over all pairs of filterable
/// (numeric/categorical) attributes in each table of `db`, the paper's
/// "average pairwise correlation" (Table 1).
double AveragePairwiseCorrelation(const Database& db);

/// Mean |skewness| over all filterable attributes in `db`, the paper's
/// "average distribution skewness" (Table 1).
double AverageDistributionSkewness(const Database& db);

/// Total attribute domain size: sum over filterable attributes of the
/// number of distinct values (Table 1's "total attribute domain size").
size_t TotalAttributeDomainSize(const Database& db);

/// Number of filterable (numeric or categorical, non-key, non-timestamp)
/// attributes in `db`.
size_t NumFilterableAttributes(const Database& db);

/// Estimates the full-outer-join size of the whole schema by multiplying
/// expected fanouts along a spanning tree of the join graph (exact
/// computation is infeasible by design — the paper quotes 3e16 for STATS).
double EstimateFullOuterJoinSize(const Database& db);

}  // namespace cardbench

#endif  // CARDBENCH_STORAGE_STATS_H_
