#include "storage/table.h"

#include "common/logging.h"
#include "common/str_util.h"

namespace cardbench {

Status Table::AddColumn(const std::string& col_name, ColumnKind kind) {
  if (column_index_.count(col_name) > 0) {
    return Status::AlreadyExists("column " + col_name + " already exists in " +
                                 name_);
  }
  if (num_rows() > 0) {
    return Status::InvalidArgument(
        "cannot add column after rows were inserted: " + col_name);
  }
  column_index_[col_name] = columns_.size();
  columns_.emplace_back(col_name, kind);
  indexes_.emplace_back(nullptr);
  return Status::OK();
}

std::optional<size_t> Table::FindColumn(const std::string& col_name) const {
  auto it = column_index_.find(col_name);
  if (it == column_index_.end()) return std::nullopt;
  return it->second;
}

const Column& Table::ColumnByName(const std::string& col_name) const {
  return columns_[ColumnIndexOrDie(col_name)];
}

size_t Table::ColumnIndexOrDie(const std::string& col_name) const {
  auto idx = FindColumn(col_name);
  CARDBENCH_CHECK(idx.has_value(), "no column %s in table %s",
                  col_name.c_str(), name_.c_str());
  return *idx;
}

Status Table::AppendRow(const std::vector<std::optional<Value>>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(StrFormat(
        "row width %zu != column count %zu in table %s", row.size(),
        columns_.size(), name_.c_str()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].has_value()) {
      columns_[i].Append(*row[i]);
    } else {
      columns_[i].AppendNull();
    }
    indexes_[i].reset();  // invalidate cached index
  }
  return Status::OK();
}

const HashIndex& Table::GetIndex(size_t col_idx) const {
  CARDBENCH_CHECK(col_idx < columns_.size(), "bad column index");
  std::lock_guard<std::mutex> lock(index_mu_);
  if (indexes_[col_idx] == nullptr) {
    indexes_[col_idx] = std::make_unique<HashIndex>(columns_[col_idx]);
  }
  return *indexes_[col_idx];
}

size_t Table::MemoryBytes() const {
  size_t total = 0;
  for (const auto& col : columns_) total += col.MemoryBytes();
  return total;
}

std::vector<std::string> Table::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& col : columns_) names.push_back(col.name());
  return names;
}

}  // namespace cardbench
