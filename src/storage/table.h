#ifndef CARDBENCH_STORAGE_TABLE_H_
#define CARDBENCH_STORAGE_TABLE_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/column.h"
#include "storage/index.h"

namespace cardbench {

/// An in-memory columnar table. Rows are identified by dense 0-based ids.
/// Tables own their columns and lazily-built hash indexes on key columns.
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  // Tables are heavy, identity-carrying objects (indexes cache row ids);
  // they are neither copyable nor movable and live behind unique_ptr in the
  // Catalog.
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }

  /// Adds a column; all columns must be added before rows. Fails if a column
  /// with the same name exists.
  Status AddColumn(const std::string& col_name, ColumnKind kind);

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }

  /// Column accessors. Index-based access is bounds-checked by the vector in
  /// debug builds only; callers resolve names once and use indexes in loops.
  const Column& column(size_t idx) const { return columns_[idx]; }
  Column& column(size_t idx) { return columns_[idx]; }

  /// Returns the index of `col_name`, or nullopt.
  std::optional<size_t> FindColumn(const std::string& col_name) const;

  /// Returns the column by name or dies; for use in code paths where the
  /// schema is known to contain the column (workloads validated upfront).
  const Column& ColumnByName(const std::string& col_name) const;
  size_t ColumnIndexOrDie(const std::string& col_name) const;

  /// Appends one row given values for all columns in declaration order.
  /// nullopt entries become NULL. Invalidates indexes.
  Status AppendRow(const std::vector<std::optional<Value>>& row);

  /// Hash index value -> row ids on `col_idx`; built on first use and cached
  /// until the next AppendRow.
  const HashIndex& GetIndex(size_t col_idx) const;

  /// Approximate in-memory footprint in bytes (columns only).
  size_t MemoryBytes() const;

  /// Names of all columns in declaration order.
  std::vector<std::string> ColumnNames() const;

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::unordered_map<std::string, size_t> column_index_;
  // Guards the lazy index builds below so concurrent readers can trigger
  // GetIndex safely; AppendRows (which invalidates) remains an
  // exclusive-access owner operation.
  mutable std::mutex index_mu_;
  // Lazily built per-column indexes; mutable because building an index does
  // not change the logical table state.
  mutable std::vector<std::unique_ptr<HashIndex>> indexes_;
};

}  // namespace cardbench

#endif  // CARDBENCH_STORAGE_TABLE_H_
