#ifndef CARDBENCH_STORAGE_TAG_PROBE_H_
#define CARDBENCH_STORAGE_TAG_PROBE_H_

#include <cstddef>
#include <cstdint>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace cardbench {

/// Tag-vector probe kernel of the open-addressing join table (see
/// src/exec/join_hash.h): each slot carries a 1-byte tag derived from the
/// key's hash (0 = empty), and a probe scans tags in groups of 16,
/// rejecting non-matching slots without ever touching the 8-byte key
/// array — a bloom-style early-out that keeps the hot probe loop inside
/// one cache line per group.
///
/// Lives alongside the SIMD layer rather than inside the KernelTable: the
/// kernels are exact bit operations (no cross-tier reduction contract to
/// maintain) and SSE2 is the x86-64 baseline, so a single guarded inline
/// implementation with a scalar fallback covers every host the dispatch
/// tiers do. Callers must pad the tag array so 16 bytes are readable from
/// any probed slot (the join table mirrors its first 15 tags past the end
/// of each partition).
inline constexpr size_t kTagGroupWidth = 16;

/// Slots holding this tag are empty. Occupied slots store a tag with the
/// high bit set (see join_hash.h's TagOfHash), so 0 never collides.
inline constexpr uint8_t kEmptyTag = 0;

/// Bitmask over tags[0, 16): bit i set iff tags[i] == tag.
inline uint32_t TagMatchMask16(const uint8_t* tags, uint8_t tag) {
#if defined(__SSE2__)
  const __m128i group =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags));
  const __m128i match =
      _mm_cmpeq_epi8(group, _mm_set1_epi8(static_cast<char>(tag)));
  return static_cast<uint32_t>(_mm_movemask_epi8(match));
#else
  uint32_t mask = 0;
  for (size_t i = 0; i < kTagGroupWidth; ++i) {
    mask |= (tags[i] == tag ? 1u : 0u) << i;
  }
  return mask;
#endif
}

/// Bitmask over tags[0, 16): bit i set iff tags[i] is empty.
inline uint32_t TagEmptyMask16(const uint8_t* tags) {
  return TagMatchMask16(tags, kEmptyTag);
}

}  // namespace cardbench

#endif  // CARDBENCH_STORAGE_TAG_PROBE_H_
