#ifndef CARDBENCH_STORAGE_VALUE_H_
#define CARDBENCH_STORAGE_VALUE_H_

#include <cstdint>
#include <string>

namespace cardbench {

/// All attribute values in cardbench are 64-bit integers, mirroring the
/// paper's scope: CardEst is evaluated on numerical and categorical
/// attributes only ("LIKE" string predicates are explicitly out of scope),
/// and categorical values "can be mapped to integers" (§2). Timestamps are
/// integers (seconds since epoch). NULLs are tracked in a separate validity
/// bitmap per column.
using Value = int64_t;

/// Logical attribute class. The distinction matters to estimators
/// (categorical columns get per-value statistics, numeric columns get range
/// histograms) and to the workload generator (categorical predicates are
/// equality/IN, numeric predicates are ranges).
enum class ColumnKind : uint8_t {
  kNumeric = 0,      ///< ordered numeric attribute; range predicates apply
  kCategorical = 1,  ///< unordered finite-domain attribute; =/IN predicates
  kKey = 2,          ///< primary/foreign key; join predicates only
  kTimestamp = 3,    ///< creation-date column; used for the update split
};

/// Human-readable name of a ColumnKind for EXPLAIN/debug output.
std::string ColumnKindName(ColumnKind kind);

}  // namespace cardbench

#endif  // CARDBENCH_STORAGE_VALUE_H_
