#include "workload/workload_gen.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "cardest/extended_table.h"
#include "common/logging.h"
#include "common/str_util.h"

namespace cardbench {

WorkloadOptions WorkloadOptions::StatsCeb() {
  WorkloadOptions options;
  options.num_templates = 70;
  options.num_queries = 146;
  options.min_tables = 2;
  options.max_tables = 8;
  options.max_predicates = 16;
  options.allow_fk_fk = true;
  options.seed = 2021;
  return options;
}

WorkloadOptions WorkloadOptions::JobLight() {
  WorkloadOptions options;
  options.num_templates = 23;
  options.num_queries = 70;
  options.min_tables = 2;
  options.max_tables = 5;
  options.max_predicates = 4;
  options.allow_fk_fk = false;
  options.max_true_card = 2e7;  // an order of magnitude below STATS-CEB
  options.seed = 1995;
  return options;
}

namespace {

/// True if (table, column) appears as the unique (left/PK) side of a schema
/// relation — used to distinguish PK-FK from FK-FK candidate edges.
bool IsPrimaryEndpoint(const Database& db, const JoinEndpoint& endpoint) {
  for (const auto& rel : db.join_relations()) {
    if (rel.left_table == endpoint.table &&
        rel.left_column == endpoint.column) {
      return true;
    }
  }
  return false;
}

/// A value drawn from the empirical distribution of a column (non-NULL).
/// Returns false if the column is entirely NULL.
bool SampleColumnValue(const Column& col, Rng& rng, Value* out) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const size_t row = rng.NextUint64(std::max<size_t>(1, col.size()));
    if (row < col.size() && col.IsValid(row)) {
      *out = col.Get(row);
      return true;
    }
  }
  return false;
}

}  // namespace

Result<Query> RandomJoinTemplate(const Database& db, Rng& rng,
                                 size_t num_tables, bool allow_fk_fk) {
  const auto groups = JoinColumnGroups(db);

  Query query;
  const auto& names = db.table_names();
  query.tables.push_back(names[rng.NextUint64(names.size())]);

  for (size_t step = 1; step < num_tables; ++step) {
    // Candidate edges: endpoint on a current table paired with a
    // join-compatible endpoint on a new table.
    struct Candidate {
      JoinEdge edge;
      std::string new_table;
      bool pk_fk;
    };
    std::vector<Candidate> candidates;
    for (const auto& group : groups) {
      for (const auto& a : group) {
        if (query.TableIndex(a.table) < 0) continue;
        for (const auto& b : group) {
          if (query.TableIndex(b.table) >= 0) continue;
          const bool pk_fk =
              IsPrimaryEndpoint(db, a) || IsPrimaryEndpoint(db, b);
          if (!allow_fk_fk && !pk_fk) continue;
          candidates.push_back(
              {{a.table, a.column, b.table, b.column}, b.table, pk_fk});
        }
      }
    }
    if (candidates.empty()) {
      return Status::Internal("no join candidate extends the template");
    }
    // Bias toward PK-FK edges (FK-FK joins are rarer in real workloads).
    std::vector<double> weights;
    weights.reserve(candidates.size());
    for (const auto& cand : candidates) weights.push_back(cand.pk_fk ? 4.0 : 1.0);
    const Candidate& pick = candidates[rng.NextWeighted(weights)];
    query.joins.push_back(pick.edge);
    query.tables.push_back(pick.new_table);
  }
  return query;
}

void AddRandomPredicates(const Database& db, Rng& rng, size_t count,
                         Query& query) {
  // Collect filterable columns over the query's tables.
  std::vector<std::pair<std::string, std::string>> columns;
  for (const auto& table_name : query.tables) {
    const Table& table = db.TableOrDie(table_name);
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Column& col = table.column(c);
      if (col.kind() == ColumnKind::kNumeric ||
          col.kind() == ColumnKind::kCategorical) {
        columns.push_back({table_name, col.name()});
      }
    }
  }
  if (columns.empty()) return;

  // Allow at most two predicates per column (a range).
  std::map<std::pair<std::string, std::string>, int> used;
  for (size_t added = 0; added < count;) {
    const auto& pick = columns[rng.NextUint64(columns.size())];
    if (used[pick] >= 2) {
      bool all_full = true;
      for (const auto& col : columns) {
        if (used[col] < 2) {
          all_full = false;
          break;
        }
      }
      if (all_full) return;
      continue;
    }
    const Column& col = db.TableOrDie(pick.first).ColumnByName(pick.second);
    Value value = 0;
    if (!SampleColumnValue(col, rng, &value)) {
      used[pick] = 2;
      continue;
    }
    CompareOp op;
    if (col.kind() == ColumnKind::kCategorical) {
      op = rng.NextBool(0.85) ? CompareOp::kEq : CompareOp::kNeq;
      used[pick] = 2;  // one predicate per categorical column
    } else {
      const double u = rng.NextDouble();
      if (u < 0.35) {
        op = CompareOp::kGe;
      } else if (u < 0.7) {
        op = CompareOp::kLe;
      } else if (u < 0.8) {
        op = CompareOp::kGt;
      } else if (u < 0.9) {
        op = CompareOp::kLt;
      } else {
        op = CompareOp::kEq;
        used[pick] = 2;
      }
    }
    query.predicates.push_back({pick.first, pick.second, op, value});
    ++used[pick];
    ++added;
  }
}

Result<Workload> GenerateWorkload(const Database& db,
                                  TrueCardService& truecard,
                                  const std::string& name,
                                  const WorkloadOptions& options) {
  Rng rng(options.seed);
  Workload workload;
  workload.name = name;

  // --- Phase 1: distinct join templates spanning the join-size range. ---
  std::vector<Query> templates;
  std::set<std::string> seen;
  size_t attempts = 0;
  while (templates.size() < options.num_templates &&
         attempts < options.num_templates * 300) {
    ++attempts;
    // Spread sizes: cycle through the size range, extra weight on 3-5.
    const size_t span = options.max_tables - options.min_tables + 1;
    size_t num_tables =
        options.min_tables + (templates.size() % span);
    if (rng.NextBool(0.3)) {
      num_tables = options.min_tables + rng.NextUint64(span);
    }
    auto tmpl = RandomJoinTemplate(db, rng, num_tables, options.allow_fk_fk);
    if (!tmpl.ok()) continue;
    const std::string key = tmpl->CanonicalKey();
    if (seen.count(key) > 0) continue;
    seen.insert(key);
    templates.push_back(std::move(*tmpl));
  }
  if (templates.size() < options.num_templates) {
    CARDBENCH_LOG("workload %s: only %zu/%zu distinct templates possible",
                  name.c_str(), templates.size(), options.num_templates);
  }
  if (templates.empty()) {
    return Status::Internal("no join templates could be generated");
  }

  // --- Phase 2: queries with spread-out true cardinalities. ---
  // Candidates are validated with a tightly-limited probe service over
  // their WHOLE sub-plan query space: the optimizer will request an
  // estimate for every connected sub-plan, and the benchmark needs every
  // one of those exact cardinalities — an unfiltered FK-FK sub-join that
  // dwarfs the execution budget disqualifies the query. Probe results are
  // imported into the caller's service afterwards.
  ExecLimits probe_limits;
  probe_limits.timeout_seconds = 15.0;
  probe_limits.max_intermediate_tuples = 30000000;
  TrueCardService probe(db, probe_limits);
  probe.ImportFrom(truecard);
  const double max_subplan_card = options.max_subplan_card > 0
                                      ? options.max_subplan_card
                                      : 3.0 * options.max_true_card;

  // Buckets over log10(card); a candidate is accepted if its bucket is not
  // over-full, pushing the workload toward a wide cardinality range.
  const size_t kBuckets = 10;
  std::vector<size_t> bucket_counts(kBuckets, 0);
  const double per_bucket_quota =
      2.0 * static_cast<double>(options.num_queries) / kBuckets;

  size_t tmpl_cursor = 0;
  size_t rejects = 0;
  while (workload.queries.size() < options.num_queries &&
         rejects < options.num_queries * 60) {
    const Query& tmpl = templates[tmpl_cursor % templates.size()];
    ++tmpl_cursor;
    Query query = tmpl;
    const size_t num_preds =
        1 + rng.NextUint64(std::max<size_t>(1, options.max_predicates));
    AddRandomPredicates(db, rng, num_preds, query);

    auto card = probe.Card(query);
    if (!card.ok() || *card < options.min_true_card ||
        *card > options.max_true_card) {
      ++rejects;
      continue;
    }
    const size_t bucket = std::min(
        kBuckets - 1,
        static_cast<size_t>(std::log10(std::max(1.0, *card))));
    if (static_cast<double>(bucket_counts[bucket]) >= per_bucket_quota &&
        rejects < options.num_queries * 40) {
      ++rejects;
      continue;
    }
    // Validate the entire sub-plan space.
    auto subplans = probe.AllSubplanCards(query);
    if (!subplans.ok()) {
      ++rejects;
      continue;
    }
    bool subplans_ok = true;
    for (const auto& [mask, sub_card] : *subplans) {
      if (sub_card > max_subplan_card) {
        subplans_ok = false;
        break;
      }
    }
    if (!subplans_ok) {
      ++rejects;
      continue;
    }
    ++bucket_counts[bucket];
    query.name = name + " Q" + std::to_string(workload.queries.size() + 1);
    workload.queries.push_back(std::move(query));
  }
  truecard.ImportFrom(probe);
  CARDBENCH_LOG("workload %s: %zu queries over %zu templates (%zu rejected)",
                name.c_str(), workload.queries.size(), templates.size(),
                rejects);
  return workload;
}

Result<std::vector<TrainingQuery>> GenerateTrainingQueries(
    const Database& db, TrueCardService& truecard, size_t count,
    uint64_t seed) {
  Rng rng(seed);
  std::vector<TrainingQuery> out;
  out.reserve(count);
  size_t failures = 0;
  while (out.size() < count && failures < count * 20) {
    const size_t num_tables = 1 + rng.NextUint64(5);
    Query query;
    if (num_tables == 1) {
      const auto& names = db.table_names();
      query.tables.push_back(names[rng.NextUint64(names.size())]);
    } else {
      auto tmpl = RandomJoinTemplate(db, rng, num_tables, /*allow_fk_fk=*/true);
      if (!tmpl.ok()) {
        ++failures;
        continue;
      }
      query = std::move(*tmpl);
    }
    AddRandomPredicates(db, rng, rng.NextUint64(6), query);
    auto card = truecard.Card(query);
    if (!card.ok()) {
      ++failures;
      continue;
    }
    out.push_back({std::move(query), *card});
  }
  return out;
}

}  // namespace cardbench
