#ifndef CARDBENCH_WORKLOAD_WORKLOAD_GEN_H_
#define CARDBENCH_WORKLOAD_WORKLOAD_GEN_H_

#include <string>
#include <vector>

#include "cardest/query_features.h"
#include "common/rng.h"
#include "common/status.h"
#include "exec/true_card.h"
#include "query/query.h"
#include "storage/catalog.h"

namespace cardbench {

/// A named benchmark query workload.
struct Workload {
  std::string name;
  std::vector<Query> queries;
};

/// Knobs of the two-phase workload generation the paper describes (§3):
/// first distinct acyclic join templates over the schema, then per-template
/// filter predicates tuned to spread true cardinalities.
struct WorkloadOptions {
  size_t num_templates = 70;
  size_t num_queries = 146;
  size_t min_tables = 2;
  size_t max_tables = 8;
  size_t max_predicates = 16;
  /// Whether FK-FK (many-to-many) join edges may appear (STATS-CEB: yes,
  /// JOB-LIGHT: no).
  bool allow_fk_fk = true;
  /// Queries whose exact cardinality exceeds this are rejected (keeps the
  /// end-to-end benches tractable at simulator scale).
  double max_true_card = 2e8;
  double min_true_card = 1.0;
  /// Queries are also rejected when ANY connected sub-plan exceeds this:
  /// the optimizer estimates (and the metrics score) the whole sub-plan
  /// query space, and an unfiltered FK-FK sub-join can dwarf the final
  /// result. 0 means 3x max_true_card.
  double max_subplan_card = 0.0;
  uint64_t seed = 2021;

  /// Defaults mirroring STATS-CEB's shape (Table 2).
  static WorkloadOptions StatsCeb();
  /// Defaults mirroring JOB-LIGHT's shape (Table 2).
  static WorkloadOptions JobLight();
};

/// Generates a benchmark workload on `db`: `num_templates` distinct join
/// templates covering the configured join-size range, then queries with
/// hand-shaped predicate counts and a wide true-cardinality spread (the
/// exact counts are obtained from `truecard`, which also memoizes them for
/// the benches). Deterministic in options.seed.
Result<Workload> GenerateWorkload(const Database& db,
                                  TrueCardService& truecard,
                                  const std::string& name,
                                  const WorkloadOptions& options);

/// Uniformly random training workload for the query-driven estimators:
/// 1–5 tables, 0–5 predicates, no hand-shaping — intentionally a different
/// distribution than the test workloads (the workload-shift effect of O1).
Result<std::vector<TrainingQuery>> GenerateTrainingQueries(
    const Database& db, TrueCardService& truecard, size_t count,
    uint64_t seed);

/// One random acyclic join template with `num_tables` tables (exposed for
/// tests). Join edges connect join-compatible column pairs; when
/// `allow_fk_fk` is false only PK-FK edges are used.
Result<Query> RandomJoinTemplate(const Database& db, Rng& rng,
                                 size_t num_tables, bool allow_fk_fk);

/// Appends `count` random predicates on the query's tables, with values
/// drawn from the actual column distributions.
void AddRandomPredicates(const Database& db, Rng& rng, size_t count,
                         Query& query);

}  // namespace cardbench

#endif  // CARDBENCH_WORKLOAD_WORKLOAD_GEN_H_
