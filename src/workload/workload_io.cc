#include "workload/workload_io.h"

#include <fstream>

#include "common/str_util.h"
#include "query/parser.h"

namespace cardbench {

Status WriteWorkloadSql(const Workload& workload, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << "-- workload: " << workload.name << "\n";
  for (const auto& query : workload.queries) {
    out << "-- " << query.name << "\n" << query.ToSql() << "\n";
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Workload> ReadWorkloadSql(const Database& db, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  Workload workload;
  std::string line;
  std::string pending_name;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (StartsWith(trimmed, "-- workload:")) {
      workload.name = std::string(Trim(trimmed.substr(12)));
      continue;
    }
    if (StartsWith(trimmed, "--")) {
      pending_name = std::string(Trim(trimmed.substr(2)));
      continue;
    }
    auto query = ParseSql(std::string(trimmed));
    if (!query.ok()) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: ", path.c_str(), line_number) +
          query.status().message());
    }
    CARDBENCH_RETURN_IF_ERROR(ValidateQuery(*query, db));
    query->name = pending_name;
    pending_name.clear();
    workload.queries.push_back(std::move(*query));
  }
  return workload;
}

}  // namespace cardbench
