#ifndef CARDBENCH_WORKLOAD_WORKLOAD_IO_H_
#define CARDBENCH_WORKLOAD_WORKLOAD_IO_H_

#include <string>

#include "common/status.h"
#include "storage/catalog.h"
#include "workload/workload_gen.h"

namespace cardbench {

/// Writes `workload` as a SQL file, one query per line, preceded by a
/// comment line with the query's name — the same interchange format the
/// paper's artifact uses for STATS-CEB. Example:
///
///   -- STATS-CEB Q1
///   SELECT COUNT(*) FROM posts, comments WHERE ...;
Status WriteWorkloadSql(const Workload& workload, const std::string& path);

/// Reads a workload back from WriteWorkloadSql's format, validating every
/// query against `db`. Lines that are blank are skipped; a parse or
/// validation failure aborts with the offending line number.
Result<Workload> ReadWorkloadSql(const Database& db, const std::string& path);

}  // namespace cardbench

#endif  // CARDBENCH_WORKLOAD_WORKLOAD_IO_H_
