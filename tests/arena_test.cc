#include "common/arena.h"

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#if defined(__SANITIZE_ADDRESS__)
#define CARDBENCH_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CARDBENCH_TEST_ASAN 1
#endif
#endif

#if defined(CARDBENCH_TEST_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace cardbench {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(256);
  char* a = static_cast<char*>(arena.Allocate(100));
  char* b = static_cast<char*>(arena.Allocate(100));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Writes to one allocation must not touch the other.
  std::memset(a, 0xAA, 100);
  std::memset(b, 0xBB, 100);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(a[i]), 0xAA);
    EXPECT_EQ(static_cast<unsigned char>(b[i]), 0xBB);
  }
  for (size_t align : {size_t{1}, size_t{8}, size_t{16}, size_t{32},
                       Arena::kDefaultAlignment}) {
    void* p = arena.Allocate(17, align);
    EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(p) % align) << align;
  }
}

TEST(ArenaTest, ZeroByteAllocationIsValid) {
  Arena arena;
  EXPECT_NE(arena.Allocate(0), nullptr);
}

TEST(ArenaTest, GrowsPastInitialCapacityAndSpansBlocks) {
  Arena arena(64);
  std::vector<char*> chunks;
  for (int i = 0; i < 50; ++i) {
    char* p = static_cast<char*>(arena.Allocate(100));
    std::memset(p, i, 100);
    chunks.push_back(p);
  }
  for (int i = 0; i < 50; ++i) {
    for (size_t j = 0; j < 100; ++j) {
      ASSERT_EQ(chunks[i][j], static_cast<char>(i)) << i << "," << j;
    }
  }
  EXPECT_GE(arena.bytes_used(), 50u * 100u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(ArenaTest, ResetReusesBlocksWithoutGrowing) {
  Arena arena(1 << 12);
  for (int i = 0; i < 20; ++i) (void)arena.Allocate(1000);
  const size_t reserved = arena.bytes_reserved();
  for (int round = 0; round < 10; ++round) {
    arena.Reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
    for (int i = 0; i < 20; ++i) (void)arena.Allocate(1000);
  }
  // Steady state: the blocks grown in round one satisfy every later round.
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, FrameRewindsToConstructionPoint) {
  Arena arena(1 << 12);
  (void)arena.Allocate(100);
  const size_t outer = arena.bytes_used();
  {
    ArenaFrame frame(&arena);
    EXPECT_EQ(frame.arena(), &arena);
    (void)frame.arena()->Allocate(5000);
    EXPECT_GT(arena.bytes_used(), outer);
  }
  EXPECT_EQ(arena.bytes_used(), outer);
}

TEST(ArenaTest, NestedFramesUnwindInOrder) {
  Arena arena(256);
  ArenaFrame a(&arena);
  (void)arena.Allocate(100);
  const size_t after_a = arena.bytes_used();
  {
    ArenaFrame b(&arena);
    (void)arena.Allocate(1000);  // spills into a grown block
    {
      ArenaFrame c(&arena);
      (void)arena.Allocate(10000);
    }
    const size_t in_b = arena.bytes_used();
    (void)arena.Allocate(64);
    EXPECT_GT(arena.bytes_used(), in_b);
  }
  EXPECT_EQ(arena.bytes_used(), after_a);
}

TEST(ArenaTest, NullFrameIsInert) {
  ArenaFrame frame(nullptr);
  EXPECT_EQ(frame.arena(), nullptr);
}

TEST(ArenaTest, AllocateArrayIsTypedAndAligned) {
  Arena arena;
  double* d = arena.AllocateArray<double>(31);
  uint32_t* u = arena.AllocateArray<uint32_t>(7);
  EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(d) % alignof(double));
  EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(u) % alignof(uint32_t));
  for (int i = 0; i < 31; ++i) d[i] = i;
  for (int i = 0; i < 7; ++i) u[i] = i;
  for (int i = 0; i < 31; ++i) EXPECT_EQ(d[i], i);
}

TEST(ArenaTest, ThreadLocalArenaIsPerThread) {
  Arena* main_arena = &ThreadLocalArena();
  EXPECT_EQ(main_arena, &ThreadLocalArena());
  Arena* other = nullptr;
  std::thread t([&other] { other = &ThreadLocalArena(); });
  t.join();
  EXPECT_NE(other, nullptr);
  EXPECT_NE(other, main_arena);
}

#if defined(CARDBENCH_TEST_ASAN)
TEST(ArenaAsanTest, RewoundMemoryIsPoisoned) {
  Arena arena(1 << 12);
  char* p = nullptr;
  {
    ArenaFrame frame(&arena);
    p = static_cast<char*>(frame.arena()->Allocate(64));
    EXPECT_FALSE(__asan_address_is_poisoned(p));
    p[0] = 1;
  }
  // After the frame pops, the released range is poison — a use-after-reset
  // would fault under ASAN exactly like a heap use-after-free.
  EXPECT_TRUE(__asan_address_is_poisoned(p));
}

TEST(ArenaAsanTest, RedzoneBetweenAllocationsIsPoisoned) {
  Arena arena(1 << 12);
  char* a = static_cast<char*>(arena.Allocate(16));
  EXPECT_FALSE(__asan_address_is_poisoned(a + 15));
  // The byte straight past the allocation is a redzone.
  EXPECT_TRUE(__asan_address_is_poisoned(a + 16));
}
#endif  // CARDBENCH_TEST_ASAN

}  // namespace
}  // namespace cardbench
