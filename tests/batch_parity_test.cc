// Batched-estimation parity suite: EstimateCards (one call per query over
// all connected sub-plans) must be bit-identical to per-mask EstimateCard
// for every estimator in the zoo — same doubles, independent of batch
// composition — and routing the planner and the serving layer through the
// batch path must change nothing observable: injected cardinalities,
// EXPLAIN text, plan cost, P-Error. The concurrent case hammers the
// service's batch cache path from several client threads (TSAN coverage).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cardest/registry.h"
#include "harness/bench_env.h"
#include "metrics/perror.h"
#include "service/estimation_service.h"

namespace cardbench {
namespace {

BenchFlags BatchFlags() {
  BenchFlags flags;
  flags.fast = true;
  flags.scale = 0.05;
  flags.max_queries = 8;
  flags.exec_timeout = 10.0;
  flags.cache_dir = ::testing::TempDir() + "/cardbench_batch_parity_cache";
  flags.training_queries = 100;
  return flags;
}

/// One environment for the whole binary: both the per-estimator fixture and
/// the concurrent service test read from it (const access only).
BenchEnv* SharedEnv() {
  static BenchEnv* env = []() -> BenchEnv* {
    auto created = BenchEnv::Create(BenchDataset::kStats, BatchFlags());
    if (!created.ok()) {
      ADD_FAILURE() << created.status().ToString();
      return nullptr;
    }
    return created->release();
  }();
  return env;
}

class BatchParityTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() { ASSERT_NE(SharedEnv(), nullptr); }
};

TEST_P(BatchParityTest, BatchIsBitIdenticalToScalar) {
  BenchEnv* env = SharedEnv();
  ASSERT_NE(env, nullptr);
  auto est = env->MakeNamedEstimator(GetParam());
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  const CardinalityEstimator& estimator = **est;
  const Optimizer& opt = env->optimizer();

  for (const auto& ctx : env->query_contexts()) {
    const QueryGraph& graph = *ctx.graph;
    const std::vector<uint64_t>& subsets = graph.connected_subsets();

    // One batched call over the optimizer's full sub-plan space equals the
    // per-mask scalar path, double-for-double.
    const std::vector<double> batch = estimator.EstimateCards(graph, subsets);
    ASSERT_EQ(batch.size(), subsets.size()) << ctx.query->name;
    for (size_t i = 0; i < subsets.size(); ++i) {
      EXPECT_EQ(batch[i], estimator.EstimateCard(graph, subsets[i]))
          << ctx.query->name << " mask " << subsets[i] << " under "
          << GetParam();
    }

    // Batch composition must not matter: the service forwards arbitrary
    // miss subsets, so a strided sub-batch has to reproduce the same
    // values the full batch produced.
    std::vector<uint64_t> strided;
    std::vector<size_t> strided_idx;
    for (size_t i = 0; i < subsets.size(); i += 3) {
      strided.push_back(subsets[i]);
      strided_idx.push_back(i);
    }
    const std::vector<double> partial = estimator.EstimateCards(graph, strided);
    ASSERT_EQ(partial.size(), strided.size());
    for (size_t k = 0; k < strided.size(); ++k) {
      EXPECT_EQ(partial[k], batch[strided_idx[k]])
          << ctx.query->name << " mask " << strided[k] << " under "
          << GetParam();
    }

    // The batched planner path changes nothing observable vs the scalar
    // legacy path: injected cards, chosen plan, cost, P-Error.
    auto legacy = opt.PlanLegacy(*ctx.query, estimator);
    auto planned = opt.Plan(graph, estimator);
    ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
    ASSERT_TRUE(planned.ok()) << planned.status().ToString();
    EXPECT_EQ(planned->num_estimates, legacy->num_estimates);
    ASSERT_EQ(planned->injected_cards.size(), legacy->injected_cards.size());
    for (const auto& [mask, card] : legacy->injected_cards) {
      auto it = planned->injected_cards.find(mask);
      ASSERT_NE(it, planned->injected_cards.end()) << "mask " << mask;
      EXPECT_EQ(it->second, card)
          << ctx.query->name << " mask " << mask << " under " << GetParam();
    }
    EXPECT_EQ(planned->plan->Explain(), legacy->plan->Explain())
        << ctx.query->name;
    EXPECT_EQ(planned->plan->estimated_cost, legacy->plan->estimated_cost);

    PErrorCalculator perror(opt, graph, ctx.true_cards);
    EXPECT_EQ(perror.EvaluatePlan(*planned->plan),
              perror.EvaluatePlan(*legacy->plan))
        << ctx.query->name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllEstimators, BatchParityTest,
                         ::testing::ValuesIn(AllEstimatorNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// Concurrent batch requests against the service's sharded cache: several
// client threads replay every workload query against several estimators,
// repeatedly, so batch lookups, batch fills and LRU touches race on the
// same shards. Every response must still equal the direct batch result.
TEST(BatchServiceConcurrencyTest, ConcurrentBatchRequestsMatchDirect) {
  BenchEnv* env = SharedEnv();
  ASSERT_NE(env, nullptr);

  ServiceOptions options;
  options.num_threads = 4;
  options.queue_depth = 64;
  options.cache_capacity = 4096;
  options.cache_shards = 8;
  EstimationService service(options);

  const std::vector<std::string> names = {"PostgreSQL", "UniSample",
                                          "PessEst"};
  for (const std::string& name : names) {
    auto est = env->MakeNamedEstimator(name);
    ASSERT_TRUE(est.ok()) << est.status().ToString();
    service.RegisterEstimator(std::move(*est));
  }

  // Ground truth: the direct (unserved, uncached) batch result per
  // (estimator, query).
  const auto& contexts = env->query_contexts();
  std::unordered_map<std::string, std::vector<std::vector<double>>> expected;
  for (const std::string& name : names) {
    const CardinalityEstimator* estimator = service.GetEstimator(name);
    ASSERT_NE(estimator, nullptr);
    auto& per_query = expected[name];
    per_query.reserve(contexts.size());
    for (const auto& ctx : contexts) {
      per_query.push_back(estimator->EstimateCards(
          *ctx.graph, ctx.graph->connected_subsets()));
    }
  }

  constexpr int kClientThreads = 4;
  constexpr int kRounds = 3;
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> request_errors{0};
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        for (const std::string& name : names) {
          for (size_t q = 0; q < contexts.size(); ++q) {
            auto cards = service.EstimateQuerySync(name, *contexts[q].graph);
            if (!cards.ok()) {
              request_errors.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            const std::vector<uint64_t>& subsets =
                contexts[q].graph->connected_subsets();
            const std::vector<double>& want = expected[name][q];
            if (cards->size() != subsets.size()) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            for (size_t i = 0; i < subsets.size(); ++i) {
              auto it = cards->find(subsets[i]);
              if (it == cards->end() || it->second != want[i]) {
                mismatches.fetch_add(1, std::memory_order_relaxed);
              }
            }
          }
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(request_errors.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);

  // The repeated rounds must have been served from the batch cache.
  const EstimateCacheStats stats = service.cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
}

}  // namespace
}  // namespace cardbench
