#include <gtest/gtest.h>

#include "cardest/binner.h"
#include "common/rng.h"
#include "cardest/extended_table.h"
#include "datagen/stats_gen.h"

namespace cardbench {
namespace {

Column MakeColumn(const std::vector<std::optional<Value>>& values) {
  Column col("c", ColumnKind::kNumeric);
  for (const auto& v : values) {
    if (v.has_value()) {
      col.Append(*v);
    } else {
      col.AppendNull();
    }
  }
  return col;
}

TEST(BinnerTest, NullBinAndMasses) {
  const Column col = MakeColumn({1, 2, 2, 3, std::nullopt, std::nullopt});
  ColumnBinner binner(col, 4);
  EXPECT_EQ(binner.BinOf(std::nullopt), 0);
  EXPECT_NEAR(binner.BinMass(0), 2.0 / 6.0, 1e-12);
  double total_mass = 0;
  for (uint16_t b = 0; b < binner.num_bins(); ++b) {
    total_mass += binner.BinMass(b);
  }
  EXPECT_NEAR(total_mass, 1.0, 1e-12);
}

TEST(BinnerTest, SelectivityMatchesExactCountForRanges) {
  // Heavily skewed column; the binner's per-bin value counts make range
  // selectivity exact regardless of bin boundaries.
  std::vector<std::optional<Value>> values;
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) values.push_back(rng.NextZipf(100, 1.3));
  const Column col = MakeColumn(values);
  ColumnBinner binner(col, 12);

  for (const auto& [lo, hi] : std::vector<std::pair<Value, Value>>{
           {0, 0}, {1, 5}, {3, 99}, {50, 80}}) {
    size_t exact = 0;
    for (const auto& v : values) exact += (*v >= lo && *v <= hi);
    std::vector<Predicate> preds = {
        {"t", "c", CompareOp::kGe, lo}, {"t", "c", CompareOp::kLe, hi}};
    const auto fractions = binner.PredicateFractions(preds);
    double sel = 0;
    for (uint16_t b = 0; b < binner.num_bins(); ++b) {
      sel += binner.BinMass(b) * fractions[b];
    }
    EXPECT_NEAR(sel * 5000.0, static_cast<double>(exact), 1e-6)
        << "range [" << lo << "," << hi << "]";
  }
}

TEST(BinnerTest, NeqSubtractsEqualityMass) {
  const Column col = MakeColumn({1, 1, 1, 2, 3});
  ColumnBinner binner(col, 4);
  std::vector<Predicate> preds = {{"t", "c", CompareOp::kNeq, 1}};
  const auto fractions = binner.PredicateFractions(preds);
  double sel = 0;
  for (uint16_t b = 0; b < binner.num_bins(); ++b) {
    sel += binner.BinMass(b) * fractions[b];
  }
  EXPECT_NEAR(sel, 2.0 / 5.0, 1e-12);
}

TEST(BinnerTest, BinMeanIsExactPerBinAverage) {
  const Column col = MakeColumn({10, 20, 30, 40});
  ColumnBinner binner(col, 3);  // NULL bin + 2 value bins
  // Equi-depth: bin1 = {10,20}, bin2 = {30,40}.
  EXPECT_NEAR(binner.BinMean(1), 15.0, 1e-12);
  EXPECT_NEAR(binner.BinMean(2), 35.0, 1e-12);
}

TEST(BinnerTest, BinOfClampsOutOfRangeValues) {
  const Column col = MakeColumn({10, 20, 30});
  ColumnBinner binner(col, 4);
  EXPECT_EQ(binner.BinOf(10), binner.BinOf(5));     // below min -> first bin
  EXPECT_EQ(binner.BinOf(30), binner.BinOf(1000));  // above max -> last bin
}

TEST(BinnerTest, RefreshTracksAppendedRows) {
  Column col = MakeColumn({1, 2, 3, 4});
  ColumnBinner binner(col, 3);
  col.Append(4);
  col.Append(4);
  col.AppendNull();
  binner.Refresh(col);
  EXPECT_NEAR(binner.BinMass(0), 1.0 / 7.0, 1e-12);
  std::vector<Predicate> preds = {{"t", "c", CompareOp::kEq, 4}};
  const auto fractions = binner.PredicateFractions(preds);
  double sel = 0;
  for (uint16_t b = 0; b < binner.num_bins(); ++b) {
    sel += binner.BinMass(b) * fractions[b];
  }
  EXPECT_NEAR(sel, 3.0 / 7.0, 1e-12);
}

TEST(ExtendedTableTest, JoinColumnGroupsOnStatsSchema) {
  StatsGenConfig config;
  config.scale = 0.02;
  auto db = GenerateStatsDatabase(config);
  const auto groups = JoinColumnGroups(*db);
  ASSERT_EQ(groups.size(), 2u);  // users.Id domain, posts.Id domain
  std::vector<size_t> sizes = {groups[0].size(), groups[1].size()};
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes[0], 7u);  // users.Id + 6 FK columns
  EXPECT_EQ(sizes[1], 7u);  // posts.Id + 6 FK columns
}

TEST(ExtendedTableTest, FanoutValuesMatchIndexCounts) {
  StatsGenConfig config;
  config.scale = 0.02;
  auto db = GenerateStatsDatabase(config);
  ExtendedTable ext(*db, "users", 16);
  const int idx = ext.FanoutIndex("Id", {"badges", "UserId"});
  ASSERT_GE(idx, 0);
  const Table& users = db->TableOrDie("users");
  const Table& badges = db->TableOrDie("badges");
  const HashIndex& index = badges.GetIndex(badges.ColumnIndexOrDie("UserId"));
  // The binned fanout's per-bin mean, averaged with masses, must equal the
  // true average badge count per user.
  const auto factor = ext.FanoutMeanFactor(static_cast<size_t>(idx));
  double avg_from_bins = 0;
  const auto& binner = *ext.column(static_cast<size_t>(idx)).binner;
  for (uint16_t b = 0; b < binner.num_bins(); ++b) {
    avg_from_bins += binner.BinMass(b) * factor[b];
  }
  double true_avg = 0;
  for (size_t row = 0; row < users.num_rows(); ++row) {
    true_avg += static_cast<double>(
        index.Lookup(users.column(0).Get(row)).size());
  }
  true_avg /= static_cast<double>(users.num_rows());
  EXPECT_NEAR(avg_from_bins, true_avg, 1e-9);
}

TEST(ExtendedTableTest, AttrIndexAndDomains) {
  StatsGenConfig config;
  config.scale = 0.02;
  auto db = GenerateStatsDatabase(config);
  ExtendedTable ext(*db, "posts", 16);
  EXPECT_GE(ext.AttrIndex("Score"), 0);
  EXPECT_GE(ext.AttrIndex("PostTypeId"), 0);
  EXPECT_EQ(ext.AttrIndex("Id"), -1);  // keys are not attributes
  for (size_t domain : ext.BinDomains()) {
    EXPECT_GE(domain, 2u);
    EXPECT_LE(domain, 16u);
  }
  EXPECT_EQ(ext.num_rows(), db->TableOrDie("posts").num_rows());
}

TEST(ExtendedTableTest, RefreshAfterInsertReturnsNewRows) {
  StatsGenConfig config;
  config.scale = 0.02;
  auto db = GenerateStatsDatabase(config);
  ExtendedTable ext(*db, "tags", 16);
  const size_t before = ext.num_rows();
  Table& tags = db->TableOrDie("tags");
  ASSERT_TRUE(
      tags.AppendRow({static_cast<Value>(before + 1), 42, std::nullopt}).ok());
  const auto new_rows = ext.RefreshAfterInsert(*db);
  ASSERT_EQ(new_rows.size(), 1u);
  EXPECT_EQ(new_rows[0], before);
  EXPECT_EQ(ext.num_rows(), before + 1);
}

}  // namespace
}  // namespace cardbench
