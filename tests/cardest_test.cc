#include <gtest/gtest.h>

#include <memory>

#include "cardest/bayescard_est.h"
#include "cardest/deepdb_est.h"
#include "cardest/multihist_est.h"
#include "cardest/postgres_est.h"
#include "cardest/sampling_est.h"
#include "cardest/truecard_est.h"
#include "datagen/stats_gen.h"
#include "datagen/update_split.h"
#include "exec/true_card.h"
#include "query/parser.h"
#include "workload/workload_gen.h"

namespace cardbench {
namespace {

double QError(double estimate, double truth) {
  const double e = std::max(estimate, 1.0);
  const double t = std::max(truth, 1.0);
  return std::max(e / t, t / e);
}

/// Shared fixture: one small STATS-like database plus exact cardinalities.
class CardEstTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StatsGenConfig config;
    config.scale = 0.05;
    db_ = GenerateStatsDatabase(config).release();
    truecard_ = new TrueCardService(*db_);
  }
  static void TearDownTestSuite() {
    delete truecard_;
    delete db_;
  }

  static Query Parse(const std::string& sql) {
    auto q = ParseSql(sql);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    EXPECT_TRUE(ValidateQuery(*q, *db_).ok());
    return *q;
  }

  static double Truth(const Query& q) {
    auto card = truecard_->Card(q);
    EXPECT_TRUE(card.ok());
    return *card;
  }

  static Database* db_;
  static TrueCardService* truecard_;
};

Database* CardEstTest::db_ = nullptr;
TrueCardService* CardEstTest::truecard_ = nullptr;

const char* kSingleTableQueries[] = {
    "SELECT COUNT(*) FROM users WHERE users.Reputation >= 100;",
    "SELECT COUNT(*) FROM posts WHERE posts.PostTypeId = 1;",
    "SELECT COUNT(*) FROM posts WHERE posts.Score >= 10 AND posts.Score <= 500;",
    "SELECT COUNT(*) FROM votes WHERE votes.VoteTypeId = 2;",
    "SELECT COUNT(*) FROM comments WHERE comments.Score >= 1;",
    "SELECT COUNT(*) FROM badges WHERE badges.Date <= 400000;",
};

const char* kJoinQueries[] = {
    "SELECT COUNT(*) FROM users, badges WHERE users.Id = badges.UserId;",
    "SELECT COUNT(*) FROM posts, comments WHERE posts.Id = comments.PostId;",
    "SELECT COUNT(*) FROM users, posts, comments WHERE users.Id = "
    "posts.OwnerUserId AND posts.Id = comments.PostId;",
};

TEST_F(CardEstTest, TrueCardEstimatorIsExact) {
  TrueCardEstimator est(*truecard_);
  for (const char* sql : kSingleTableQueries) {
    const Query q = Parse(sql);
    EXPECT_DOUBLE_EQ(est.EstimateCard(q), Truth(q)) << sql;
  }
  for (const char* sql : kJoinQueries) {
    const Query q = Parse(sql);
    EXPECT_DOUBLE_EQ(est.EstimateCard(q), Truth(q)) << sql;
  }
}

TEST_F(CardEstTest, InjectedOverridesOneSubplan) {
  TrueCardEstimator base(*truecard_);
  const Query q = Parse(kSingleTableQueries[0]);
  InjectedCardEstimator injected(base, {{q.CanonicalKey(), 12345.0}});
  EXPECT_DOUBLE_EQ(injected.EstimateCard(q), 12345.0);
  const Query other = Parse(kSingleTableQueries[1]);
  EXPECT_DOUBLE_EQ(injected.EstimateCard(other), Truth(other));
}

TEST_F(CardEstTest, PostgresSingleTableIsNearExact) {
  // Per-column histograms with per-value counts make single-predicate
  // selectivities essentially exact — PostgreSQL's strength (§5.1).
  PostgresEstimator est(*db_);
  for (const char* sql : kSingleTableQueries) {
    const Query q = Parse(sql);
    EXPECT_LT(QError(est.EstimateCard(q), Truth(q)), 1.1) << sql;
  }
}

TEST_F(CardEstTest, PostgresPkFkJoinWithoutFiltersIsClose) {
  PostgresEstimator est(*db_);
  const Query q = Parse(kJoinQueries[0]);
  EXPECT_LT(QError(est.EstimateCard(q), Truth(q)), 2.0);
}

TEST_F(CardEstTest, PostgresMissesCorrelations) {
  // Reputation and UpVotes are strongly correlated; independence
  // multiplication must underestimate the conjunctive selectivity.
  PostgresEstimator est(*db_);
  const Query q = Parse(
      "SELECT COUNT(*) FROM users WHERE users.Reputation >= 200 AND "
      "users.UpVotes >= 20;");
  const double truth = Truth(q);
  if (truth >= 10) {
    EXPECT_LT(est.EstimateCard(q), truth * 0.9);
  }
}

TEST_F(CardEstTest, MultiHistCapturesGroupedCorrelation) {
  MultiHistEstimator est(*db_);
  PostgresEstimator pg(*db_);
  const Query q = Parse(
      "SELECT COUNT(*) FROM users WHERE users.Reputation >= 200 AND "
      "users.UpVotes >= 20;");
  const double truth = Truth(q);
  if (truth >= 10) {
    EXPECT_LT(QError(est.EstimateCard(q), truth),
              QError(pg.EstimateCard(q), truth) * 1.5);
  }
}

TEST_F(CardEstTest, UniSampleSingleTableTracksSelectivity) {
  UniSampleEstimator est(*db_, 2000);
  for (const char* sql : kSingleTableQueries) {
    const Query q = Parse(sql);
    const double truth = Truth(q);
    if (truth < 30) continue;  // sampling noise dominates tiny counts
    EXPECT_LT(QError(est.EstimateCard(q), truth), 1.8) << sql;
  }
}

TEST_F(CardEstTest, WjSampleUnfilteredJoinIsNearUnbiased) {
  WjSampleEstimator est(*db_, 4000);
  for (const char* sql : kJoinQueries) {
    const Query q = Parse(sql);
    EXPECT_LT(QError(est.EstimateCard(q), Truth(q)), 2.0) << sql;
  }
}

TEST_F(CardEstTest, PessEstNeverUnderestimates) {
  // The defining property of pessimistic estimation, checked over a swept
  // random workload.
  PessEstEstimator est(*db_);
  Rng rng(99);
  size_t checked = 0;
  for (int i = 0; i < 40; ++i) {
    auto tmpl = RandomJoinTemplate(*db_, rng, 2 + rng.NextUint64(3), true);
    if (!tmpl.ok()) continue;
    Query q = std::move(*tmpl);
    AddRandomPredicates(*db_, rng, rng.NextUint64(4), q);
    auto truth = truecard_->Card(q);
    if (!truth.ok()) continue;
    EXPECT_GE(est.EstimateCard(q), *truth * (1 - 1e-9)) << q.ToSql();
    ++checked;
  }
  EXPECT_GT(checked, 20u);
}

TEST_F(CardEstTest, PessEstExactOnSingleTables) {
  PessEstEstimator est(*db_);
  for (const char* sql : kSingleTableQueries) {
    const Query q = Parse(sql);
    EXPECT_DOUBLE_EQ(est.EstimateCard(q), std::max(1e-6, Truth(q))) << sql;
  }
}

// ---- Data-driven PGM estimators (shared fanout machinery). ----

template <typename T>
class PgmEstimatorTest : public CardEstTest {};

using PgmTypes =
    ::testing::Types<BayesCardEstimator, DeepDbEstimator, FlatEstimator>;

TYPED_TEST_SUITE(PgmEstimatorTest, PgmTypes);

TYPED_TEST(PgmEstimatorTest, SingleTableEstimatesAreAccurate) {
  TypeParam est(*this->db_);
  for (const char* sql : kSingleTableQueries) {
    const Query q = this->Parse(sql);
    const double truth = this->Truth(q);
    if (truth < 20) continue;
    EXPECT_LT(QError(est.EstimateCard(q), truth), 1.6) << sql;
  }
}

TYPED_TEST(PgmEstimatorTest, UnfilteredJoinSizeIsNearExact) {
  // The fanout method gives the exact join size when no predicates apply:
  // |T_r| * E[F] telescopes to the true count.
  TypeParam est(*this->db_);
  for (const char* sql : kJoinQueries) {
    const Query q = this->Parse(sql);
    EXPECT_LT(QError(est.EstimateCard(q), this->Truth(q)), 1.35) << sql;
  }
}

TYPED_TEST(PgmEstimatorTest, FilteredJoinsStayWithinModestQError) {
  TypeParam est(*this->db_);
  const Query q = this->Parse(
      "SELECT COUNT(*) FROM users, posts, comments WHERE users.Id = "
      "posts.OwnerUserId AND posts.Id = comments.PostId AND posts.Score >= 5 "
      "AND users.Reputation >= 50;");
  const double truth = this->Truth(q);
  if (truth >= 20) {
    EXPECT_LT(QError(est.EstimateCard(q), truth), 8.0);
  }
}

TYPED_TEST(PgmEstimatorTest, FkFkJoinSupported) {
  TypeParam est(*this->db_);
  const Query q = this->Parse(
      "SELECT COUNT(*) FROM comments, badges WHERE comments.UserId = "
      "badges.UserId;");
  EXPECT_LT(QError(est.EstimateCard(q), this->Truth(q)), 3.0);
}

TYPED_TEST(PgmEstimatorTest, UpdateTracksInsertedRows) {
  // Build on the stale half, then insert the rest and Update(): the
  // single-table estimate must follow the new row count.
  StatsGenConfig config;
  config.scale = 0.05;
  auto full = GenerateStatsDatabase(config);
  TimeSplit split = SplitDatabaseByTime(*full, StatsTimestampColumn, 0.5);
  TypeParam est(*split.stale);

  const Query q = this->Parse("SELECT COUNT(*) FROM votes;");
  const double before = est.EstimateCard(q);
  ASSERT_TRUE(ApplyInsertions(*split.stale, split.insertions).ok());
  ASSERT_TRUE(est.Update().ok());
  const double after = est.EstimateCard(q);
  const double full_rows =
      static_cast<double>(full->TableOrDie("votes").num_rows());
  EXPECT_GT(after, before);
  EXPECT_LT(QError(after, full_rows), 1.05);
}

TEST_F(CardEstTest, FanoutAblationDegradesJoinAccuracy) {
  // With the fanout method disabled, BayesCard falls back to join
  // uniformity: on the skewed FK-FK join its estimate must degrade
  // relative to the fanout-based one (the DESIGN.md ablation).
  BayesCardEstimator est(*db_);
  const Query q = Parse(
      "SELECT COUNT(*) FROM comments, badges WHERE comments.UserId = "
      "badges.UserId;");
  const double truth = Truth(q);
  const double with_fanout = QError(est.EstimateCard(q), truth);
  est.set_use_fanout_join(false);
  const double without = QError(est.EstimateCard(q), truth);
  EXPECT_GT(without, with_fanout);
  // Single-table estimates are unaffected by the switch.
  const Query single = Parse(kSingleTableQueries[0]);
  const double a = est.EstimateCard(single);
  est.set_use_fanout_join(true);
  EXPECT_DOUBLE_EQ(est.EstimateCard(single), a);
}

TEST_F(CardEstTest, SpnOptionsControlModelGranularity) {
  // A stricter independence threshold forces more sum/product structure,
  // never less; the resulting model should not shrink.
  SpnOptions loose;
  loose.independence_threshold = 0.6;
  SpnOptions strict;
  strict.independence_threshold = 0.1;
  DeepDbEstimator coarse(*db_, 48, loose);
  DeepDbEstimator fine(*db_, 48, strict);
  EXPECT_GE(fine.ModelBytes(), coarse.ModelBytes());
}

TEST_F(CardEstTest, ModelSizeScalingFollowsArchitecture) {
  // The Figure-3 ordering (BayesCard smallest) is a scaling property: BN
  // CPTs are O(#columns * bins^2) regardless of row count, while FLAT's
  // multi-leaves grow with the number of distinct joint bin tuples, i.e.
  // with data size. Verify the scaling behaviour directly.
  StatsGenConfig big_config;
  big_config.scale = 0.2;
  auto big_db = GenerateStatsDatabase(big_config);

  BayesCardEstimator bn_small(*db_);
  BayesCardEstimator bn_big(*big_db);
  FlatEstimator fspn_small(*db_);
  FlatEstimator fspn_big(*big_db);

  const double bn_growth = static_cast<double>(bn_big.ModelBytes()) /
                           static_cast<double>(bn_small.ModelBytes());
  const double fspn_growth = static_cast<double>(fspn_big.ModelBytes()) /
                             static_cast<double>(fspn_small.ModelBytes());
  // BN growth comes only from bin-domain saturation and levels off; FLAT's
  // joint leaves keep growing with the data.
  EXPECT_LT(bn_growth, fspn_growth);
  EXPECT_GT(fspn_growth, 1.5);
  EXPECT_GT(bn_small.TrainSeconds(), 0.0);
}

}  // namespace
}  // namespace cardbench
