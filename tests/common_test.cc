#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"

namespace cardbench {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(equal, 5);
}

TEST(RngTest, BoundedUniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NextUint64(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(RngTest, NextInt64CoversInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInt64(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng rng(17);
  int first = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const int64_t v = rng.NextZipf(100, 1.2);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 100);
    first += (v == 0);
  }
  // Rank 0 should hold far more than the uniform 1% share.
  EXPECT_GT(first, n / 10);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(19);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<size_t>(rng.NextZipf(10, 0.0))];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 40);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(23);
  const auto perm = rng.Permutation(100);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng a(31);
  Rng fork = a.Fork();
  // Consuming the fork must not change the parent's future draws.
  Rng b(31);
  (void)b.Fork();
  for (int i = 0; i < 1000; ++i) (void)fork.NextUint64();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(WeightedSamplerTest, MatchesWeights) {
  Rng rng(37);
  WeightedSampler sampler({1.0, 3.0, 6.0});
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(rng)];
  EXPECT_NEAR(counts[0], n * 0.1, n * 0.02);
  EXPECT_NEAR(counts[1], n * 0.3, n * 0.02);
  EXPECT_NEAR(counts[2], n * 0.6, n * 0.02);
}

TEST(WeightedSamplerTest, ZeroWeightsDegradeToUniform) {
  Rng rng(41);
  WeightedSampler sampler({0.0, 0.0});
  int zero = 0;
  for (int i = 0; i < 10000; ++i) zero += (sampler.Sample(rng) == 0);
  EXPECT_NEAR(zero, 5000, 500);
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(StrUtilTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StrUtilTest, TrimStripsWhitespace) {
  EXPECT_EQ(Trim("  x y\t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StrUtilTest, JoinConcatenates) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StrUtilTest, FormatDurationPicksUnits) {
  EXPECT_EQ(FormatDuration(7200.0), "2.00h");
  EXPECT_EQ(FormatDuration(25.0), "25.00s");
  EXPECT_EQ(FormatDuration(0.004), "4.00ms");
}

TEST(StrUtilTest, FormatCountLargeValuesUseScientific) {
  EXPECT_EQ(FormatCount(146.0), "146");
  EXPECT_EQ(FormatCount(2e10), "2.0e10");
}

}  // namespace
}  // namespace cardbench
