#include <gtest/gtest.h>

#include "optimizer/cost_model.h"

namespace cardbench {
namespace {

TEST(CostModelTest, PagesRoundUpAndFloorAtOne) {
  CostModel cost;
  EXPECT_DOUBLE_EQ(cost.Pages(0), 1.0);
  EXPECT_DOUBLE_EQ(cost.Pages(1), 1.0);
  EXPECT_DOUBLE_EQ(cost.Pages(cost.rows_per_page), 1.0);
  EXPECT_DOUBLE_EQ(cost.Pages(cost.rows_per_page + 1), 2.0);
}

TEST(CostModelTest, SeqScanGrowsLinearlyWithRowsAndPredicates) {
  CostModel cost;
  const double base = cost.SeqScanCost(1000, 0);
  EXPECT_GT(cost.SeqScanCost(2000, 0), base);
  EXPECT_GT(cost.SeqScanCost(1000, 3), base);
  // Roughly linear in rows.
  EXPECT_NEAR(cost.SeqScanCost(2000, 0) / base, 2.0, 0.2);
}

TEST(CostModelTest, IndexScanBeatsSeqScanForSelectiveLookups) {
  CostModel cost;
  // 1 match out of 100k rows: the index must win by a wide margin.
  EXPECT_LT(cost.IndexScanCost(1, 0) * 50, cost.SeqScanCost(100000, 1));
  // Matching everything: in-memory, a full index sweep and a seq scan are
  // the same order of magnitude (no random-page penalty), but the index
  // path must not look cheaper than the plain scan.
  EXPECT_GT(cost.IndexScanCost(100000, 0), cost.SeqScanCost(100000, 1) * 0.5);
}

TEST(CostModelTest, HashJoinDegradesGentlyBeyondCacheSize) {
  CostModel cost;
  const double fits =
      cost.HashJoinCost(1000, cost.hash_mem_rows * 0.9, 1000, 0);
  const double degraded =
      cost.HashJoinCost(1000, cost.hash_mem_rows * 10.0, 1000, 0);
  // Degradation beyond the linear build growth, but a factor — not a
  // disk-spill cliff (the executor is in-memory).
  EXPECT_GT(degraded, fits * 10.0);       // linear part alone would be ~10x
  EXPECT_LT(degraded, fits * 10.0 * 3.0);  // bounded degradation
}

TEST(CostModelTest, HashJoinStaysPreferredOverMergeInMemory) {
  // With an in-memory executor the sort always costs more than the hash
  // build, so merge join is a rare choice — matching the executor, where
  // std::sort of the join keys is the slower path.
  CostModel cost;
  for (double n : {1e4, 1e6, 2e7}) {
    EXPECT_LT(cost.HashJoinCost(n, n, n, 0), cost.MergeJoinCost(n, n, n, 0))
        << n;
  }
}

TEST(CostModelTest, IndexNestLoopWinsForTinyOuter) {
  CostModel cost;
  // 10 probes into a huge table vs building a huge hash table.
  const double inl = cost.IndexNestLoopCost(10, 3.0, 30, 0, 0);
  const double hash = cost.HashJoinCost(10, 1000000, 30, 0);
  EXPECT_LT(inl, hash);
  // But for a huge outer, probing per row loses to one hash build.
  const double inl_big = cost.IndexNestLoopCost(1000000, 3.0, 3000000, 0, 0);
  const double hash_big = cost.HashJoinCost(1000000, 50000, 3000000, 0);
  EXPECT_GT(inl_big, hash_big);
}

TEST(CostModelTest, ExtraJoinClausesAddCost) {
  CostModel cost;
  EXPECT_GT(cost.HashJoinCost(1000, 1000, 5000, 2),
            cost.HashJoinCost(1000, 1000, 5000, 0));
  EXPECT_GT(cost.MergeJoinCost(1000, 1000, 5000, 2),
            cost.MergeJoinCost(1000, 1000, 5000, 0));
}

TEST(CostModelTest, OutputCardinalityMattersToEveryJoin) {
  // The property the whole benchmark rests on: estimated output size moves
  // every join cost, so cardinality errors can flip operator choices.
  CostModel cost;
  for (double out : {1.0, 1e4, 1e7}) {
    EXPECT_LT(cost.HashJoinCost(1000, 1000, out, 0),
              cost.HashJoinCost(1000, 1000, out * 10, 0));
    EXPECT_LT(cost.MergeJoinCost(1000, 1000, out, 0),
              cost.MergeJoinCost(1000, 1000, out * 10, 0));
    EXPECT_LT(cost.IndexNestLoopCost(1000, 2.0, out, 0, 0),
              cost.IndexNestLoopCost(1000, 2.0, out * 10, 0, 0));
  }
}

}  // namespace
}  // namespace cardbench
