#include <gtest/gtest.h>

#include <set>

#include "datagen/imdb_gen.h"
#include "datagen/stats_gen.h"
#include "datagen/update_split.h"
#include "storage/stats.h"

namespace cardbench {
namespace {

StatsGenConfig SmallStats() {
  StatsGenConfig config;
  config.scale = 0.1;
  return config;
}

TEST(StatsGenTest, SchemaMatchesPaper) {
  auto db = GenerateStatsDatabase(SmallStats());
  EXPECT_EQ(db->num_tables(), 8u);
  EXPECT_EQ(db->join_relations().size(), 12u);  // Figure 1
  EXPECT_EQ(NumFilterableAttributes(*db), 23u);  // Table 1
  for (const char* name : {"users", "posts", "comments", "badges", "votes",
                           "postHistory", "postLinks", "tags"}) {
    EXPECT_NE(db->FindTable(name), nullptr) << name;
  }
}

TEST(StatsGenTest, DeterministicAcrossRuns) {
  auto a = GenerateStatsDatabase(SmallStats());
  auto b = GenerateStatsDatabase(SmallStats());
  const Table& ta = a->TableOrDie("posts");
  const Table& tb = b->TableOrDie("posts");
  ASSERT_EQ(ta.num_rows(), tb.num_rows());
  for (size_t c = 0; c < ta.num_columns(); ++c) {
    for (size_t r = 0; r < std::min<size_t>(ta.num_rows(), 200); ++r) {
      ASSERT_EQ(ta.column(c).IsValid(r), tb.column(c).IsValid(r));
      if (ta.column(c).IsValid(r)) {
        ASSERT_EQ(ta.column(c).Get(r), tb.column(c).Get(r));
      }
    }
  }
}

TEST(StatsGenTest, SeedChangesData) {
  StatsGenConfig other = SmallStats();
  other.seed = 777;
  auto a = GenerateStatsDatabase(SmallStats());
  auto b = GenerateStatsDatabase(other);
  const Column& ca = a->TableOrDie("users").ColumnByName("Reputation");
  const Column& cb = b->TableOrDie("users").ColumnByName("Reputation");
  size_t differing = 0;
  for (size_t r = 0; r < std::min(ca.size(), cb.size()); ++r) {
    differing += (ca.Get(r) != cb.Get(r));
  }
  EXPECT_GT(differing, ca.size() / 2);
}

TEST(StatsGenTest, ForeignKeysReferenceExistingParents) {
  auto db = GenerateStatsDatabase(SmallStats());
  const size_t n_users = db->TableOrDie("users").num_rows();
  const Column& fk = db->TableOrDie("comments").ColumnByName("UserId");
  for (size_t r = 0; r < fk.size(); ++r) {
    if (!fk.IsValid(r)) continue;
    ASSERT_GE(fk.Get(r), 1);
    ASSERT_LE(fk.Get(r), static_cast<Value>(n_users));
  }
}

TEST(StatsGenTest, ForeignKeyDegreesAreSkewed) {
  auto db = GenerateStatsDatabase(SmallStats());
  const Table& votes = db->TableOrDie("votes");
  const HashIndex& idx = votes.GetIndex(votes.ColumnIndexOrDie("PostId"));
  size_t max_degree = 0;
  for (const auto& [value, rows] : idx.entries()) {
    max_degree = std::max(max_degree, rows.size());
  }
  // Degree skew over the whole key domain (paper §5.1: key values matching
  // zero, one, or hundreds of tuples): the hottest post receives far more
  // votes than the per-post average.
  const double avg_over_all_posts =
      static_cast<double>(idx.num_entries()) /
      static_cast<double>(db->TableOrDie("posts").num_rows());
  EXPECT_GT(static_cast<double>(max_degree), 8.0 * avg_over_all_posts);
  // And some posts receive no votes at all.
  EXPECT_LT(idx.num_distinct(), db->TableOrDie("posts").num_rows());
}

TEST(StatsGenTest, AttributesAreCorrelatedWithinUsers) {
  auto db = GenerateStatsDatabase(SmallStats());
  const Table& users = db->TableOrDie("users");
  const double corr = PearsonCorrelation(users.ColumnByName("Reputation"),
                                         users.ColumnByName("UpVotes"));
  EXPECT_GT(corr, 0.3);
}

TEST(StatsGenTest, ChildDatesFollowParentDates) {
  auto db = GenerateStatsDatabase(SmallStats());
  const Table& posts = db->TableOrDie("posts");
  const Table& users = db->TableOrDie("users");
  const Column& owner = posts.ColumnByName("OwnerUserId");
  const Column& pdate = posts.ColumnByName("CreationDate");
  const Column& udate = users.ColumnByName("CreationDate");
  for (size_t r = 0; r < posts.num_rows(); ++r) {
    if (!owner.IsValid(r)) continue;
    ASSERT_GE(pdate.Get(r), udate.Get(static_cast<size_t>(owner.Get(r) - 1)));
  }
}

TEST(StatsGenTest, ScaleControlsRowCounts) {
  StatsGenConfig big = SmallStats();
  big.scale = 0.2;
  auto small_db = GenerateStatsDatabase(SmallStats());
  auto big_db = GenerateStatsDatabase(big);
  EXPECT_NEAR(static_cast<double>(big_db->TableOrDie("votes").num_rows()),
              2.0 * static_cast<double>(small_db->TableOrDie("votes").num_rows()),
              8.0);
}

TEST(ImdbGenTest, SchemaMatchesPaper) {
  ImdbGenConfig config;
  config.scale = 0.1;
  auto db = GenerateImdbDatabase(config);
  EXPECT_EQ(db->num_tables(), 6u);
  EXPECT_EQ(db->join_relations().size(), 5u);   // star schema
  EXPECT_EQ(NumFilterableAttributes(*db), 8u);  // Table 1
  for (const auto& rel : db->join_relations()) {
    EXPECT_EQ(rel.left_table, "title");  // all joins centered on title
  }
}

TEST(ImdbGenTest, StatsIsMoreSkewedAndCorrelatedThanImdb) {
  // Table 1's headline comparison: STATS has higher average skew and
  // pairwise correlation than the simplified IMDB.
  StatsGenConfig sc;
  sc.scale = 0.1;
  ImdbGenConfig ic;
  ic.scale = 0.05;
  auto stats = GenerateStatsDatabase(sc);
  auto imdb = GenerateImdbDatabase(ic);
  EXPECT_GT(AverageDistributionSkewness(*stats),
            AverageDistributionSkewness(*imdb));
  EXPECT_GT(AveragePairwiseCorrelation(*stats),
            AveragePairwiseCorrelation(*imdb));
}

TEST(UpdateSplitTest, SplitsRoughlyAtFraction) {
  auto db = GenerateStatsDatabase(SmallStats());
  const TimeSplit split = SplitDatabaseByTime(*db, StatsTimestampColumn, 0.5);
  const double total =
      static_cast<double>(split.stale_rows + split.inserted_rows);
  EXPECT_NEAR(static_cast<double>(split.stale_rows) / total, 0.5, 0.05);
}

TEST(UpdateSplitTest, StaleRowsRespectCutoff) {
  auto db = GenerateStatsDatabase(SmallStats());
  const TimeSplit split = SplitDatabaseByTime(*db, StatsTimestampColumn, 0.5);
  const Column& date =
      split.stale->TableOrDie("comments").ColumnByName("CreationDate");
  for (size_t r = 0; r < date.size(); ++r) {
    ASSERT_LE(date.Get(r), split.cutoff);
  }
}

TEST(UpdateSplitTest, ApplyInsertionsRestoresRowCounts) {
  auto db = GenerateStatsDatabase(SmallStats());
  TimeSplit split = SplitDatabaseByTime(*db, StatsTimestampColumn, 0.5);
  ASSERT_TRUE(ApplyInsertions(*split.stale, split.insertions).ok());
  for (const auto& name : db->table_names()) {
    EXPECT_EQ(split.stale->TableOrDie(name).num_rows(),
              db->TableOrDie(name).num_rows())
        << name;
  }
}

TEST(UpdateSplitTest, SchemaAndRelationsCloned) {
  auto db = GenerateStatsDatabase(SmallStats());
  const TimeSplit split = SplitDatabaseByTime(*db, StatsTimestampColumn, 0.5);
  EXPECT_EQ(split.stale->num_tables(), db->num_tables());
  EXPECT_EQ(split.stale->join_relations().size(), db->join_relations().size());
}

}  // namespace
}  // namespace cardbench
