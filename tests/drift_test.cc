// Tests of the online-refresh pipeline: streaming insert feed determinism,
// atomic batch validation, incremental-vs-full-retrain estimate quality,
// versioned hot-swap linearizability under concurrent load, model-version
// stamping, and pre-admission purging of expired queue entries.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cardest/insertion_batch.h"
#include "cardest/registry.h"
#include "common/str_util.h"
#include "datagen/stats_gen.h"
#include "datagen/streaming_feed.h"
#include "datagen/update_split.h"
#include "exec/true_card.h"
#include "metrics/metrics.h"
#include "query/parser.h"
#include "service/estimation_service.h"
#include "service/request_queue.h"
#include "workload/workload_gen.h"

namespace cardbench {
namespace {

Query Parse(const std::string& sql) {
  auto q = ParseSql(sql);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

std::unique_ptr<Database> SmallStats(uint64_t seed = 7) {
  StatsGenConfig config;
  config.scale = 0.15;
  config.seed = seed;
  return GenerateStatsDatabase(config);
}

// ---------------------------------------------------------------------------
// StreamingInsertFeed
// ---------------------------------------------------------------------------

TEST(StreamingFeedTest, DeterministicBatchesAndVersionProgression) {
  // Two identical generations replayed through two feeds must produce the
  // same batch sequence (tables, deltas, versions) — re-runs are exact.
  auto db1 = SmallStats();
  auto db2 = SmallStats();
  TimeSplit split1 = SplitDatabaseByTime(*db1, StatsTimestampColumn, 0.5);
  TimeSplit split2 = SplitDatabaseByTime(*db2, StatsTimestampColumn, 0.5);
  StreamingInsertFeed feed1(*split1.stale, std::move(split1.insertions),
                            StatsTimestampColumn, 4);
  StreamingInsertFeed feed2(*split2.stale, std::move(split2.insertions),
                            StatsTimestampColumn, 4);
  ASSERT_EQ(feed1.num_batches(), feed2.num_batches());
  ASSERT_EQ(feed1.total_rows(), feed2.total_rows());
  ASSERT_GT(feed1.num_batches(), 1u);

  uint64_t expected_version = split1.stale->data_version();
  while (!feed1.Done()) {
    auto b1 = feed1.ApplyNext(*split1.stale);
    auto b2 = feed2.ApplyNext(*split2.stale);
    ASSERT_TRUE(b1.ok()) << b1.status().ToString();
    ASSERT_TRUE(b2.ok()) << b2.status().ToString();
    EXPECT_FALSE(b1->IsFullRefresh());
    EXPECT_GT(b1->total_inserted_rows(), 0u);
    EXPECT_EQ(b1->data_version, ++expected_version);
    EXPECT_EQ(b1->data_version, b2->data_version);
    ASSERT_EQ(b1->tables.size(), b2->tables.size());
    for (size_t i = 0; i < b1->tables.size(); ++i) {
      EXPECT_EQ(b1->tables[i].table, b2->tables[i].table);
      EXPECT_EQ(b1->tables[i].old_num_rows, b2->tables[i].old_num_rows);
      EXPECT_EQ(b1->tables[i].new_num_rows, b2->tables[i].new_num_rows);
    }
  }
  EXPECT_TRUE(feed2.Done());
  auto exhausted = feed1.ApplyNext(*split1.stale);
  EXPECT_EQ(exhausted.status().code(), StatusCode::kOutOfRange);

  // All rows arrived: the streamed copy caught up with the full data.
  for (const auto& name : db1->table_names()) {
    EXPECT_EQ(split1.stale->TableOrDie(name).num_rows(),
              db1->TableOrDie(name).num_rows())
        << name;
  }
}

TEST(StreamingFeedTest, TimestampLessTablesSplitByRowPosition) {
  // A table with no timestamp column still spreads across batches by row
  // position: row j of n lands in batch floor(j * k / n), deterministically.
  Database db("plain");
  auto table = db.AddTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->AddColumn("v", ColumnKind::kNumeric).ok());

  std::vector<TimeSplit::Insertion> insertions;
  TimeSplit::Insertion ins;
  ins.table = "t";
  for (int i = 0; i < 10; ++i) {
    ins.rows.push_back({std::optional<Value>(i)});
  }
  insertions.push_back(std::move(ins));

  StreamingInsertFeed feed(db, std::move(insertions),
                           [](const std::string&) { return std::string(); },
                           4);
  EXPECT_EQ(feed.total_rows(), 10u);
  std::vector<size_t> batch_sizes;
  while (!feed.Done()) {
    auto batch = feed.ApplyNext(db);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    batch_sizes.push_back(batch->total_inserted_rows());
  }
  // floor(j*4/10): rows 0-2 | 3-4 | 5-7 | 8-9.
  EXPECT_EQ(batch_sizes, (std::vector<size_t>{3, 2, 3, 2}));
  EXPECT_EQ(db.TableOrDie("t").num_rows(), 10u);
}

// ---------------------------------------------------------------------------
// ApplyInsertions validation
// ---------------------------------------------------------------------------

TEST(ApplyInsertionsTest, SchemaMismatchIsStructuredErrorAndAtomic) {
  Database db("d");
  auto table = db.AddTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->AddColumn("a", ColumnKind::kNumeric).ok());
  ASSERT_TRUE((*table)->AddColumn("b", ColumnKind::kNumeric).ok());
  ASSERT_TRUE((*table)->AppendRow({Value{1}, Value{2}}).ok());
  const uint64_t version_before = db.data_version();

  // Batch 1 is valid, batch 2 has a row of the wrong width: nothing may be
  // applied — not even the valid prefix — and the version must not move.
  std::vector<TimeSplit::Insertion> bad;
  bad.push_back({"t", {{Value{3}, Value{4}}}});
  bad.push_back({"t", {{Value{5}}}});  // one column short
  const Status status = ApplyInsertions(db, bad);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("t"), std::string::npos);
  EXPECT_EQ(db.TableOrDie("t").num_rows(), 1u);
  EXPECT_EQ(db.data_version(), version_before);

  std::vector<TimeSplit::Insertion> unknown;
  unknown.push_back({"nope", {{Value{1}, Value{2}}}});
  EXPECT_EQ(ApplyInsertions(db, unknown).code(), StatusCode::kNotFound);
  EXPECT_EQ(db.data_version(), version_before);

  // A valid batch still applies and bumps the version once.
  std::vector<TimeSplit::Insertion> good;
  good.push_back({"t", {{Value{3}, Value{4}}, {Value{5}, Value{6}}}});
  EXPECT_TRUE(ApplyInsertions(db, good).ok());
  EXPECT_EQ(db.TableOrDie("t").num_rows(), 3u);
  EXPECT_EQ(db.data_version(), version_before + 1);
}

// ---------------------------------------------------------------------------
// Incremental refresh quality vs full retrain
// ---------------------------------------------------------------------------

double MedianQError(const CardinalityEstimator& est,
                    const std::vector<TrainingQuery>& probes) {
  std::vector<double> qerrors;
  for (const auto& probe : probes) {
    qerrors.push_back(QError(est.EstimateCard(probe.query),
                             probe.cardinality));
  }
  return ComputePercentiles(std::move(qerrors)).p50;
}

TEST(DriftTest, IncrementalRefreshTracksFullRetrain) {
  auto full = SmallStats();
  TimeSplit split = SplitDatabaseByTime(*full, StatsTimestampColumn, 0.5);
  Database& db = *split.stale;
  TrueCardService cards(db);
  EstimatorConfig config;
  config.fast = true;

  // Training queries labeled on the stale half (pre-drift state).
  auto stale_training = GenerateTrainingQueries(db, cards, 60, 11);
  ASSERT_TRUE(stale_training.ok()) << stale_training.status().ToString();

  // Build the incremental candidates before the drift.
  std::vector<std::string> names = {"UniSample", "MultiHist", "LW-XGB",
                                    "LW-NN", "MSCN"};
  std::vector<std::unique_ptr<CardinalityEstimator>> incremental;
  for (const auto& name : names) {
    auto est = MakeEstimator(name, db, cards, &*stale_training, config);
    ASSERT_TRUE(est.ok()) << name << ": " << est.status().ToString();
    EXPECT_TRUE((*est)->SupportsIncrementalUpdate()) << name;
    incremental.push_back(std::move(*est));
  }

  // Stream the drift in and refresh each candidate per batch.
  StreamingInsertFeed feed(db, std::move(split.insertions),
                           StatsTimestampColumn, 2);
  while (!feed.Done()) {
    auto batch = feed.ApplyNext(db);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    TrueCardService now(db);
    auto refresh_training = GenerateTrainingQueries(db, now, 60, 11);
    ASSERT_TRUE(refresh_training.ok());
    batch->refresh_training = &*refresh_training;
    for (auto& est : incremental) {
      const Status status = est->IncrementalUpdate(*batch);
      EXPECT_TRUE(status.ok()) << est->name() << ": " << status.ToString();
    }
  }

  // Full retrains on the caught-up data, and probes labeled on it.
  TrueCardService now(db);
  auto final_training = GenerateTrainingQueries(db, now, 60, 11);
  ASSERT_TRUE(final_training.ok());
  auto probes = GenerateTrainingQueries(db, now, 40, 23);
  ASSERT_TRUE(probes.ok());
  for (size_t i = 0; i < names.size(); ++i) {
    auto retrained =
        MakeEstimator(names[i], db, now, &*final_training, config);
    ASSERT_TRUE(retrained.ok()) << names[i];
    const double inc_q = MedianQError(*incremental[i], *probes);
    const double full_q = MedianQError(**retrained, *probes);
    // Generous but meaningful bound: the incrementally refreshed model must
    // stay within a small factor of the retrain on median Q-Error (an
    // un-refreshed model drifts far beyond this at a 50% data split).
    EXPECT_LE(inc_q, 8.0 * full_q + 8.0)
        << names[i] << ": incremental " << inc_q << " vs retrain " << full_q;
  }
}

// ---------------------------------------------------------------------------
// Hot-swap linearizability and version stamping
// ---------------------------------------------------------------------------

/// Deterministic estimator parameterized by a generation tag: every answer
/// is a pure function of (tag, sub-plan key), so a torn read — a response
/// mixing two generations — is detectable by exact comparison.
class TaggedEstimator : public CardinalityEstimator {
 public:
  explicit TaggedEstimator(double tag) : tag_(tag) {}
  std::string name() const override { return "Tagged"; }
  double EstimateCard(const Query& subquery) const override {
    return tag_ * 1e9 +
           static_cast<double>(Fnv1aHash(subquery.CanonicalKey()) % 1000003);
  }

 private:
  double tag_;
};

std::unordered_map<uint64_t, double> ExpectedCards(double tag,
                                                   const Query& query) {
  TaggedEstimator reference(tag);
  std::unordered_map<uint64_t, double> cards;
  for (uint64_t mask : EnumerateConnectedSubsets(query)) {
    cards[mask] = mask == query.FullMask()
                      ? reference.EstimateCard(query)
                      : reference.EstimateCard(query.Induced(mask));
  }
  return cards;
}

TEST(DriftTest, HotSwapIsLinearizableUnderConcurrentLoad) {
  const Query query = Parse(
      "SELECT COUNT(*) FROM users, posts, comments WHERE users.Id = "
      "posts.OwnerUserId AND posts.Id = comments.PostId AND "
      "posts.Score >= 5;");
  const auto v1_cards = ExpectedCards(1.0, query);
  const auto v2_cards = ExpectedCards(2.0, query);

  ServiceOptions options;
  options.num_threads = 4;
  options.queue_depth = 4096;
  EstimationService service(options);
  service.RegisterEstimator(std::make_unique<TaggedEstimator>(1.0));

  // Readers hammer the service across the swap; every response must be
  // entirely v1 or entirely v2 (no torn mix) with the matching stamped
  // model_version, and nothing may fail or be shed.
  std::atomic<bool> stop{false};
  std::atomic<size_t> v1_seen{0}, v2_seen{0};
  std::vector<std::string> errors;
  std::mutex errors_mu;
  auto reader = [&] {
    while (!stop.load()) {
      std::promise<EstimateResponse> promise;
      auto future = promise.get_future();
      EstimateRequest request;
      request.estimator = "Tagged";
      request.query = &query;
      const Status submitted = service.Submit(
          std::move(request),
          [&promise](EstimateResponse r) { promise.set_value(std::move(r)); });
      if (!submitted.ok()) {
        std::lock_guard<std::mutex> lock(errors_mu);
        errors.push_back("submit: " + submitted.ToString());
        return;
      }
      const EstimateResponse response = future.get();
      if (!response.status.ok()) {
        std::lock_guard<std::mutex> lock(errors_mu);
        errors.push_back("response: " + response.status.ToString());
        return;
      }
      const bool is_v1 =
          response.model_version == 1 && response.cards == v1_cards;
      const bool is_v2 =
          response.model_version == 2 && response.cards == v2_cards;
      if (is_v1) v1_seen.fetch_add(1);
      if (is_v2) v2_seen.fetch_add(1);
      if (!is_v1 && !is_v2) {
        std::lock_guard<std::mutex> lock(errors_mu);
        errors.push_back(
            "torn response at model_version " +
            std::to_string(response.model_version));
        return;
      }
    }
  };
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) readers.emplace_back(reader);

  // Let v1 serve, swap, let v2 serve.
  while (v1_seen.load() < 50 && errors.empty()) std::this_thread::yield();
  service.HotSwapEstimator(std::make_unique<TaggedEstimator>(2.0), 2, 0.5);
  while (v2_seen.load() < 50 && errors.empty()) std::this_thread::yield();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_TRUE(errors.empty()) << errors.front();
  EXPECT_GE(v1_seen.load(), 50u);
  EXPECT_GE(v2_seen.load(), 50u);

  const auto info = service.VersionInfo();
  ASSERT_EQ(info.size(), 1u);
  EXPECT_EQ(info[0].model_version, 2u);
  EXPECT_EQ(info[0].refresh_count, 1u);
  EXPECT_DOUBLE_EQ(info[0].last_refresh_seconds, 0.5);
}

TEST(DriftTest, ResponsesStampTheServingModelVersion) {
  EstimationService service;
  service.RegisterEstimator(std::make_unique<TaggedEstimator>(1.0));
  const Query query =
      Parse("SELECT COUNT(*) FROM users WHERE users.Reputation >= 100;");

  auto cards = service.EstimateQuerySync("Tagged", query);
  ASSERT_TRUE(cards.ok());

  std::promise<EstimateResponse> promise;
  auto future = promise.get_future();
  EstimateRequest request;
  request.estimator = "Tagged";
  request.query = &query;
  ASSERT_TRUE(service
                  .Submit(std::move(request),
                          [&promise](EstimateResponse r) {
                            promise.set_value(std::move(r));
                          })
                  .ok());
  EXPECT_EQ(future.get().model_version, 1u);

  service.HotSwapEstimator(std::make_unique<TaggedEstimator>(2.0), 7);
  std::promise<EstimateResponse> promise2;
  auto future2 = promise2.get_future();
  EstimateRequest request2;
  request2.estimator = "Tagged";
  request2.query = &query;
  ASSERT_TRUE(service
                  .Submit(std::move(request2),
                          [&promise2](EstimateResponse r) {
                            promise2.set_value(std::move(r));
                          })
                  .ok());
  EXPECT_EQ(future2.get().model_version, 7u);
}

// ---------------------------------------------------------------------------
// Expired-entry purge at admission
// ---------------------------------------------------------------------------

TEST(RequestQueueTest, TryPushPurgeExpiredEvictsDeadEntriesFirst) {
  RequestQueue<int> queue(2);
  ASSERT_TRUE(queue.TryPush(1));
  ASSERT_TRUE(queue.TryPush(2));
  ASSERT_FALSE(queue.TryPush(3));  // full

  // Nothing expired: the push must still fail and purge nothing.
  std::vector<int> purged;
  EXPECT_FALSE(queue.TryPushPurgeExpired(
      3, [](int) { return false; }, &purged));
  EXPECT_TRUE(purged.empty());

  // Odd entries expired: they are purged into the caller's vector and the
  // new item is admitted.
  EXPECT_TRUE(queue.TryPushPurgeExpired(
      3, [](int v) { return v % 2 == 1; }, &purged));
  EXPECT_EQ(purged, (std::vector<int>{1}));
  EXPECT_EQ(queue.size(), 2u);  // {2, 3}

  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 3);
}

TEST(ServiceTest, ExpiredQueueEntriesDoNotBlockAdmission) {
  // One worker parks on a gate; the queue fills with already-expired
  // requests; a fresh request must still be admitted because the dead
  // entries are purged (and answered DeadlineExceeded) at submit.
  ServiceOptions options;
  options.num_threads = 1;
  options.queue_depth = 2;
  EstimationService service(options);

  class BlockingEstimator : public CardinalityEstimator {
   public:
    BlockingEstimator() : released_(release_.get_future().share()) {}
    std::string name() const override { return "Block"; }
    double EstimateCard(const Query&) const override {
      entered_.fetch_add(1);
      released_.wait();
      return 1.0;
    }
    void WaitUntilEntered() const {
      while (entered_.load() == 0) std::this_thread::yield();
    }
    void Release() const { release_.set_value(); }

   private:
    mutable std::promise<void> release_;
    std::shared_future<void> released_;
    mutable std::atomic<int> entered_{0};
  };
  auto blocker = std::make_unique<BlockingEstimator>();
  const BlockingEstimator* gate = blocker.get();
  service.RegisterEstimator(std::move(blocker));

  const Query query =
      Parse("SELECT COUNT(*) FROM users WHERE users.Reputation >= 100;");
  auto submit = [&](double timeout) {
    auto promise = std::make_shared<std::promise<EstimateResponse>>();
    auto future = promise->get_future();
    EstimateRequest request;
    request.estimator = "Block";
    request.query = &query;
    request.timeout_seconds = timeout;
    const Status status = service.Submit(
        std::move(request),
        [promise](EstimateResponse r) { promise->set_value(std::move(r)); });
    return std::make_pair(status, std::move(future));
  };

  // Occupy the single worker (waiting until it is parked inside the
  // estimator, so the queue really holds what we enqueue next), then fill
  // the queue with microscopic deadlines and let them expire.
  auto [s0, f0] = submit(0.0);
  ASSERT_TRUE(s0.ok());
  gate->WaitUntilEntered();
  auto [s1, f1] = submit(1e-9);
  auto [s2, f2] = submit(1e-9);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // The queue is nominally full, but both queued entries are expired: the
  // fresh request is admitted and the dead ones complete DeadlineExceeded.
  auto [s3, f3] = submit(0.0);
  EXPECT_TRUE(s3.ok()) << s3.ToString();
  EXPECT_EQ(f1.get().status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(f2.get().status.code(), StatusCode::kDeadlineExceeded);

  gate->Release();
  EXPECT_TRUE(f0.get().status.ok());
  EXPECT_TRUE(f3.get().status.ok());
}

}  // namespace
}  // namespace cardbench
