#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "datagen/stats_gen.h"
#include "exec/executor.h"
#include "exec/true_card.h"

namespace cardbench {
namespace {

/// Parity suite of the vectorized, morsel-parallel executor: every join
/// method × scan method must produce the same count as its materialization,
/// and every (num_threads, batch_size) configuration must produce results
/// identical to the serial run — counts, tuples AND tuple order (morsel
/// outputs are concatenated in morsel order).
class ExecParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StatsGenConfig config;
    config.scale = 0.01;
    db_ = GenerateStatsDatabase(config).release();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static std::unique_ptr<PlanNode> Scan(const std::string& table,
                                        ScanMethod method,
                                        std::vector<Predicate> filters,
                                        uint64_t mask) {
    auto scan = std::make_unique<PlanNode>();
    scan->type = PlanNode::Type::kScan;
    scan->table = table;
    scan->scan_method = method;
    scan->filters = std::move(filters);
    scan->table_mask = mask;
    return scan;
  }

  /// users ⋈ comments on users.Id = comments.UserId. The comments leaf
  /// carries the equality filter comments.Score = 1, so it supports both
  /// scan methods; the users leaf keeps a range filter (seq scan only).
  static std::unique_ptr<PlanNode> TwoWayPlan(JoinMethod join_method,
                                              ScanMethod inner_scan) {
    auto join = std::make_unique<PlanNode>();
    join->type = PlanNode::Type::kJoin;
    join->join_method = join_method;
    join->edge = {"users", "Id", "comments", "UserId"};
    join->left = Scan("users", ScanMethod::kSeqScan,
                      {{"users", "Reputation", CompareOp::kGe, 20}}, 1);
    join->right = Scan("comments", inner_scan,
                       {{"comments", "Score", CompareOp::kEq, 1}}, 2);
    join->table_mask = 3;
    return join;
  }

  static Database* db_;
};

Database* ExecParityTest::db_ = nullptr;

constexpr JoinMethod kJoinMethods[] = {
    JoinMethod::kHashJoin, JoinMethod::kMergeJoin, JoinMethod::kIndexNestLoop};
constexpr ScanMethod kScanMethods[] = {ScanMethod::kSeqScan,
                                       ScanMethod::kIndexScan};

TEST_F(ExecParityTest, CountMatchesMaterializeAcrossMethods) {
  Executor reference(*db_);
  const uint64_t expected =
      reference.ExecuteCount(*TwoWayPlan(JoinMethod::kHashJoin,
                                         ScanMethod::kSeqScan))
          ->count;
  ASSERT_GT(expected, 0u);
  for (JoinMethod jm : kJoinMethods) {
    for (ScanMethod sm : kScanMethods) {
      const auto plan = TwoWayPlan(jm, sm);
      auto count = reference.ExecuteCount(*plan);
      auto tuples = reference.Materialize(*plan);
      ASSERT_TRUE(count.ok()) << count.status().ToString();
      ASSERT_TRUE(tuples.ok()) << tuples.status().ToString();
      EXPECT_EQ(count->count, expected)
          << JoinMethodName(jm) << "/" << ScanMethodName(sm);
      EXPECT_EQ(tuples->size(), count->count)
          << JoinMethodName(jm) << "/" << ScanMethodName(sm);
    }
  }
}

TEST_F(ExecParityTest, ThreadAndBatchConfigsAreBitIdentical) {
  // Baseline: serial, default batch.
  Executor baseline(*db_);
  for (JoinMethod jm : kJoinMethods) {
    for (ScanMethod sm : kScanMethods) {
      const auto plan = TwoWayPlan(jm, sm);
      const auto expected = baseline.Materialize(*plan);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();
      for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        for (size_t batch : {size_t{1}, size_t{7}, size_t{1024}}) {
          ExecOptions options;
          options.batch_size = batch;
          options.num_threads = threads;
          Executor exec(*db_, ExecLimits(), options);
          auto count = exec.ExecuteCount(*plan);
          auto tuples = exec.Materialize(*plan);
          ASSERT_TRUE(count.ok()) << count.status().ToString();
          ASSERT_TRUE(tuples.ok()) << tuples.status().ToString();
          EXPECT_EQ(count->count, expected->size())
              << JoinMethodName(jm) << "/" << ScanMethodName(sm) << " threads="
              << threads << " batch=" << batch;
          EXPECT_EQ(tuples->data, expected->data)
              << JoinMethodName(jm) << "/" << ScanMethodName(sm) << " threads="
              << threads << " batch=" << batch;
        }
      }
    }
  }
}

TEST_F(ExecParityTest, ExplainAnalyzeIdenticalSerialVsParallel) {
  ExecOptions parallel;
  parallel.num_threads = 8;
  Executor serial_exec(*db_);
  Executor parallel_exec(*db_, ExecLimits(), parallel);
  for (JoinMethod jm : kJoinMethods) {
    const auto plan = TwoWayPlan(jm, ScanMethod::kSeqScan);
    auto serial = serial_exec.ExecuteCount(*plan, /*analyze=*/true);
    auto threaded = parallel_exec.ExecuteCount(*plan, /*analyze=*/true);
    ASSERT_TRUE(serial.ok() && threaded.ok());
    EXPECT_FALSE(serial->actual_rows.empty());
    EXPECT_EQ(serial->actual_rows, threaded->actual_rows)
        << JoinMethodName(jm);
  }
}

// Regression: the wall-clock budget must be enforced on the index-scan path
// and inside join build/sort loops, not just in seq scans. An expired budget
// must trip even when every leaf is an index scan.
TEST_F(ExecParityTest, IndexScanHonorsTimeout) {
  ExecLimits limits;
  limits.timeout_seconds = 0.0;
  Executor exec(*db_, limits);
  const auto plan = Scan("comments", ScanMethod::kIndexScan,
                         {{"comments", "Score", CompareOp::kEq, 1}}, 1);
  auto result = exec.ExecuteCount(*plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->timed_out);
}

TEST_F(ExecParityTest, JoinsWithIndexLeavesHonorTimeout) {
  ExecLimits limits;
  limits.timeout_seconds = 0.0;
  for (JoinMethod jm : kJoinMethods) {
    Executor exec(*db_, limits);
    auto result = exec.ExecuteCount(*TwoWayPlan(jm, ScanMethod::kIndexScan));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->timed_out) << JoinMethodName(jm);
  }
}

TEST_F(ExecParityTest, IntermediateCapEnforcedByEveryJoinMethod) {
  ExecLimits limits;
  limits.max_intermediate_tuples = 4;
  for (JoinMethod jm : kJoinMethods) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      ExecOptions options;
      options.num_threads = threads;
      Executor exec(*db_, limits, options);
      auto tuples = exec.Materialize(*TwoWayPlan(jm, ScanMethod::kSeqScan));
      EXPECT_FALSE(tuples.ok())
          << JoinMethodName(jm) << " threads=" << threads;
    }
  }
}

// New-vs-legacy join parity (the JoinImpl A/B seam): the radix table must
// produce bit-identical tuples and counts to the legacy chained map across
// partition fan-outs, thread counts and allocation strategies. The legacy
// serial run is the baseline.
TEST_F(ExecParityTest, RadixJoinBitIdenticalToLegacyAcrossConfigs) {
  ExecOptions legacy;
  legacy.join_impl = JoinImpl::kLegacy;
  Executor baseline(*db_, ExecLimits(), legacy);
  for (ScanMethod sm : kScanMethods) {
    const auto plan = TwoWayPlan(JoinMethod::kHashJoin, sm);
    const auto expected = baseline.Materialize(*plan);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    ASSERT_GT(expected->size(), 0u);
    for (size_t radix_bits : {size_t{0}, size_t{4}, size_t{8}}) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        for (bool arena : {true, false}) {
          ExecOptions options;
          options.join_impl = JoinImpl::kRadix;
          options.radix_bits = radix_bits;
          options.num_threads = threads;
          options.use_arena = arena;
          Executor exec(*db_, ExecLimits(), options);
          auto count = exec.ExecuteCount(*plan);
          auto tuples = exec.Materialize(*plan);
          ASSERT_TRUE(count.ok()) << count.status().ToString();
          ASSERT_TRUE(tuples.ok()) << tuples.status().ToString();
          EXPECT_EQ(count->count, expected->size())
              << ScanMethodName(sm) << " radix_bits=" << radix_bits
              << " threads=" << threads << " arena=" << arena;
          EXPECT_EQ(tuples->data, expected->data)
              << ScanMethodName(sm) << " radix_bits=" << radix_bits
              << " threads=" << threads << " arena=" << arena;
        }
      }
    }
  }
}

// The prefetch distance is a pure performance knob: distance 0 (off) and a
// deep lookahead must match the default exactly.
TEST_F(ExecParityTest, PrefetchDistanceDoesNotAffectResults) {
  Executor baseline(*db_);
  const auto plan = TwoWayPlan(JoinMethod::kHashJoin, ScanMethod::kSeqScan);
  const auto expected = baseline.Materialize(*plan);
  ASSERT_TRUE(expected.ok());
  for (size_t distance : {size_t{0}, size_t{1}, size_t{32}}) {
    ExecOptions options;
    options.prefetch_distance = distance;
    Executor exec(*db_, ExecLimits(), options);
    auto tuples = exec.Materialize(*plan);
    ASSERT_TRUE(tuples.ok()) << tuples.status().ToString();
    EXPECT_EQ(tuples->data, expected->data) << "distance=" << distance;
  }
}

// Extra (non-primary) join edges run through the per-match filter path of
// both table implementations; they must agree there too.
TEST_F(ExecParityTest, ExtraEdgesAgreeAcrossJoinImpls) {
  auto make_plan = [] {
    auto plan = TwoWayPlan(JoinMethod::kHashJoin, ScanMethod::kSeqScan);
    plan->extra_edges = {{"users", "Reputation", "comments", "Score"}};
    return plan;
  };
  ExecOptions legacy;
  legacy.join_impl = JoinImpl::kLegacy;
  Executor baseline(*db_, ExecLimits(), legacy);
  const auto expected = baseline.Materialize(*make_plan());
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ExecOptions options;
    options.num_threads = threads;
    Executor exec(*db_, ExecLimits(), options);
    auto count = exec.ExecuteCount(*make_plan());
    auto tuples = exec.Materialize(*make_plan());
    ASSERT_TRUE(count.ok() && tuples.ok());
    EXPECT_EQ(count->count, expected->size()) << "threads=" << threads;
    EXPECT_EQ(tuples->data, expected->data) << "threads=" << threads;
  }
}

// Budget cut-offs must trip identically through both join implementations:
// an expired wall clock and an exhausted intermediate cap both unwind.
TEST_F(ExecParityTest, BudgetCutOffsTripUnderBothJoinImpls) {
  for (JoinImpl impl : {JoinImpl::kRadix, JoinImpl::kLegacy}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      ExecOptions options;
      options.join_impl = impl;
      options.num_threads = threads;

      ExecLimits expired;
      expired.timeout_seconds = 0.0;
      Executor timed(*db_, expired, options);
      auto result =
          timed.ExecuteCount(*TwoWayPlan(JoinMethod::kHashJoin,
                                         ScanMethod::kSeqScan));
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_TRUE(result->timed_out) << "threads=" << threads;

      ExecLimits capped;
      capped.max_intermediate_tuples = 4;
      Executor small(*db_, capped, options);
      auto tuples = small.Materialize(*TwoWayPlan(JoinMethod::kHashJoin,
                                                  ScanMethod::kSeqScan));
      EXPECT_FALSE(tuples.ok()) << "threads=" << threads;
    }
  }
}

TEST_F(ExecParityTest, ConcurrentCallersShareOneExecutor) {
  // The serving layer calls one Executor from many threads; results must
  // match the single-caller run.
  ExecOptions options;
  options.num_threads = 2;
  Executor exec(*db_, ExecLimits(), options);
  const auto plan = TwoWayPlan(JoinMethod::kHashJoin, ScanMethod::kSeqScan);
  const uint64_t expected = exec.ExecuteCount(*plan)->count;
  ThreadPool callers(4);
  std::vector<uint64_t> counts(8, 0);
  ParallelFor(callers, counts.size(), [&](size_t i) {
    counts[i] = exec.ExecuteCount(*plan)->count;
  });
  for (uint64_t c : counts) EXPECT_EQ(c, expected);
}

}  // namespace
}  // namespace cardbench
