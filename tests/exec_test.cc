#include <gtest/gtest.h>

#include <functional>

#include "datagen/stats_gen.h"
#include "exec/executor.h"
#include "exec/true_card.h"
#include "query/parser.h"

namespace cardbench {
namespace {

/// Reference COUNT(*) evaluator: recursive nested loops over filtered rows,
/// no indexes, no hashing. Exponential but exact — used as ground truth for
/// the executor on tiny data.
uint64_t BruteForceCount(const Database& db, const Query& q) {
  std::vector<const Table*> tables;
  for (const auto& name : q.tables) tables.push_back(db.FindTable(name));

  std::vector<size_t> rows(q.tables.size());
  uint64_t count = 0;
  std::function<void(size_t)> recurse = [&](size_t t) {
    if (t == q.tables.size()) {
      ++count;
      return;
    }
    const Table& table = *tables[t];
    for (size_t row = 0; row < table.num_rows(); ++row) {
      bool pass = true;
      for (const auto& pred : q.predicates) {
        if (pred.table != q.tables[t]) continue;
        const Column& col = table.ColumnByName(pred.column);
        if (!col.IsValid(row) ||
            !EvalCompare(col.Get(row), pred.op, pred.value)) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      rows[t] = row;
      // Check join edges whose both endpoints are bound.
      for (const auto& edge : q.joins) {
        const int li = q.TableIndex(edge.left_table);
        const int ri = q.TableIndex(edge.right_table);
        if (static_cast<size_t>(std::max(li, ri)) != t) continue;
        const int other = static_cast<size_t>(li) == t ? ri : li;
        const Column& lcol =
            tables[static_cast<size_t>(li)]->ColumnByName(edge.left_column);
        const Column& rcol =
            tables[static_cast<size_t>(ri)]->ColumnByName(edge.right_column);
        const size_t lrow = rows[static_cast<size_t>(li)];
        const size_t rrow = rows[static_cast<size_t>(ri)];
        (void)other;
        if (!lcol.IsValid(lrow) || !rcol.IsValid(rrow) ||
            lcol.Get(lrow) != rcol.Get(rrow)) {
          pass = false;
          break;
        }
      }
      if (pass) recurse(t + 1);
    }
  };
  recurse(0);
  return count;
}

class ExecTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StatsGenConfig config;
    config.scale = 0.01;  // tiny: brute force must stay feasible
    db_ = GenerateStatsDatabase(config).release();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static Query Parse(const std::string& sql) {
    auto q = ParseSql(sql);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  static Database* db_;
};

Database* ExecTest::db_ = nullptr;

TEST_F(ExecTest, SingleTableScanMatchesBruteForce) {
  const Query q =
      Parse("SELECT COUNT(*) FROM users WHERE users.Reputation >= 50;");
  TrueCardService svc(*db_);
  auto plan = svc.BuildCountingPlan(q);
  Executor exec(*db_);
  auto result = exec.ExecuteCount(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, BruteForceCount(*db_, q));
}

TEST_F(ExecTest, NullsNeverSatisfyPredicates) {
  // FavoriteCount is NULL for most posts; both <= and > exclude NULLs, so
  // the two counts must sum to the non-NULL count, not the table size.
  const Query le =
      Parse("SELECT COUNT(*) FROM posts WHERE posts.FavoriteCount <= 7;");
  const Query gt =
      Parse("SELECT COUNT(*) FROM posts WHERE posts.FavoriteCount > 7;");
  TrueCardService svc(*db_);
  const double non_null = static_cast<double>(
      db_->TableOrDie("posts").num_rows() -
      db_->TableOrDie("posts").ColumnByName("FavoriteCount").null_count());
  auto a = svc.Card(le);
  auto b = svc.Card(gt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(*a + *b, non_null);
  EXPECT_LT(*a + *b, static_cast<double>(db_->TableOrDie("posts").num_rows()));
}

TEST_F(ExecTest, TwoWayJoinMatchesBruteForce) {
  const Query q = Parse(
      "SELECT COUNT(*) FROM users, badges WHERE users.Id = badges.UserId AND "
      "users.Reputation >= 20;");
  TrueCardService svc(*db_);
  auto card = svc.Card(q);
  ASSERT_TRUE(card.ok());
  EXPECT_EQ(static_cast<uint64_t>(*card), BruteForceCount(*db_, q));
}

TEST_F(ExecTest, ThreeWayChainJoinMatchesBruteForce) {
  const Query q = Parse(
      "SELECT COUNT(*) FROM users, posts, comments WHERE users.Id = "
      "posts.OwnerUserId AND posts.Id = comments.PostId AND posts.Score >= 4 "
      "AND users.Views >= 2 AND comments.Score >= 1;");
  TrueCardService svc(*db_);
  auto card = svc.Card(q);
  ASSERT_TRUE(card.ok());
  EXPECT_EQ(static_cast<uint64_t>(*card), BruteForceCount(*db_, q));
}

TEST_F(ExecTest, ParallelEdgesBecomeExtraJoinFilters) {
  // Two join conditions between the same pair of tables: the second edge
  // is evaluated as a post-join filter by every join algorithm.
  const Query q = Parse(
      "SELECT COUNT(*) FROM users, posts WHERE users.Id = posts.OwnerUserId "
      "AND users.Id = posts.LastEditorUserId;");
  TrueCardService svc(*db_);
  auto plan = svc.BuildCountingPlan(q);
  ASSERT_FALSE(plan->IsScan());
  ASSERT_EQ(plan->extra_edges.size(), 1u);
  const uint64_t expected = BruteForceCount(*db_, q);
  for (JoinMethod method : {JoinMethod::kHashJoin, JoinMethod::kMergeJoin,
                            JoinMethod::kIndexNestLoop}) {
    plan->join_method = method;
    auto result = Executor(*db_).ExecuteCount(*plan);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->count, expected) << JoinMethodName(method);
  }
}

TEST_F(ExecTest, FkFkJoinMatchesBruteForce) {
  // Many-to-many join of two fact tables on a shared FK domain.
  const Query q = Parse(
      "SELECT COUNT(*) FROM comments, badges WHERE comments.UserId = "
      "badges.UserId AND comments.Score >= 2;");
  TrueCardService svc(*db_);
  auto card = svc.Card(q);
  ASSERT_TRUE(card.ok());
  EXPECT_EQ(static_cast<uint64_t>(*card), BruteForceCount(*db_, q));
}

// All three physical join algorithms must produce identical counts.
class JoinMethodTest : public ExecTest,
                       public ::testing::WithParamInterface<JoinMethod> {};

TEST_P(JoinMethodTest, AgreesWithHashJoinReference) {
  const Query q = Parse(
      "SELECT COUNT(*) FROM users, comments WHERE users.Id = comments.UserId "
      "AND comments.Score >= 1;");
  TrueCardService svc(*db_);
  auto plan = svc.BuildCountingPlan(q);
  ASSERT_FALSE(plan->IsScan());
  auto reference = Executor(*db_).ExecuteCount(*plan);
  ASSERT_TRUE(reference.ok());

  // The greedy counting plan keeps the inner side a base-table scan, which
  // is what index nested loop requires; the executor builds the inner-side
  // index on the join column on demand.
  plan->join_method = GetParam();
  auto result = Executor(*db_).ExecuteCount(*plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->count, reference->count);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, JoinMethodTest,
                         ::testing::Values(JoinMethod::kHashJoin,
                                           JoinMethod::kMergeJoin,
                                           JoinMethod::kIndexNestLoop));

TEST_F(ExecTest, MaterializeMatchesCount) {
  const Query q = Parse(
      "SELECT COUNT(*) FROM users, badges WHERE users.Id = badges.UserId AND "
      "badges.Date >= 100000;");
  TrueCardService svc(*db_);
  auto plan = svc.BuildCountingPlan(q);
  Executor exec(*db_);
  auto count = exec.ExecuteCount(*plan);
  auto tuples = exec.Materialize(*plan);
  ASSERT_TRUE(count.ok());
  ASSERT_TRUE(tuples.ok()) << tuples.status().ToString();
  EXPECT_EQ(tuples->size(), count->count);
  EXPECT_EQ(tuples->arity(), 2u);
}

TEST_F(ExecTest, TimeoutReportsTimedOut) {
  ExecLimits limits;
  limits.timeout_seconds = 0.0;  // expire immediately
  const Query q = Parse(
      "SELECT COUNT(*) FROM users, comments WHERE users.Id = "
      "comments.UserId;");
  TrueCardService svc(*db_);
  auto plan = svc.BuildCountingPlan(q);
  Executor exec(*db_, limits);
  auto result = exec.ExecuteCount(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->timed_out);
}

TEST_F(ExecTest, IntermediateCapReportsTimedOut) {
  ExecLimits limits;
  limits.max_intermediate_tuples = 4;
  const Query q = Parse(
      "SELECT COUNT(*) FROM users, posts, comments WHERE users.Id = "
      "posts.OwnerUserId AND posts.Id = comments.PostId;");
  TrueCardService svc(*db_);
  auto plan = svc.BuildCountingPlan(q);
  Executor exec(*db_, limits);
  auto result = exec.ExecuteCount(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->timed_out);
}

TEST_F(ExecTest, TrueCardServiceCachesResults) {
  const Query q =
      Parse("SELECT COUNT(*) FROM users WHERE users.Reputation >= 10;");
  TrueCardService svc(*db_);
  ASSERT_TRUE(svc.Card(q).ok());
  const size_t size_after_first = svc.cache_size();
  ASSERT_TRUE(svc.Card(q).ok());
  EXPECT_EQ(svc.cache_size(), size_after_first);
}

TEST_F(ExecTest, AllSubplanCardsCoversConnectedSubsets) {
  const Query q = Parse(
      "SELECT COUNT(*) FROM users, posts, comments WHERE users.Id = "
      "posts.OwnerUserId AND posts.Id = comments.PostId;");
  TrueCardService svc(*db_);
  auto cards = svc.AllSubplanCards(q);
  ASSERT_TRUE(cards.ok());
  EXPECT_EQ(cards->size(), EnumerateConnectedSubsets(q).size());
  // Monotonicity sanity: the filtered base card of `users` is bounded by
  // the table size.
  EXPECT_LE(cards->at(1),
            static_cast<double>(db_->TableOrDie("users").num_rows()));
}

TEST_F(ExecTest, CacheRoundTripsThroughDisk) {
  const Query q =
      Parse("SELECT COUNT(*) FROM badges WHERE badges.Date >= 500;");
  TrueCardService svc(*db_);
  auto card = svc.Card(q);
  ASSERT_TRUE(card.ok());
  const std::string path = ::testing::TempDir() + "/true_card_cache.tsv";
  ASSERT_TRUE(svc.SaveCache(path).ok());
  TrueCardService svc2(*db_);
  ASSERT_TRUE(svc2.LoadCache(path).ok());
  EXPECT_EQ(svc2.cache_size(), svc.cache_size());
  auto card2 = svc2.Card(q);
  ASSERT_TRUE(card2.ok());
  EXPECT_DOUBLE_EQ(*card2, *card);
}

}  // namespace
}  // namespace cardbench
