#include <gtest/gtest.h>

#include "datagen/stats_gen.h"
#include "exec/executor.h"
#include "exec/true_card.h"
#include "query/parser.h"

namespace cardbench {
namespace {

TEST(ExplainAnalyzeTest, CollectsActualRowsPerNode) {
  StatsGenConfig config;
  config.scale = 0.02;
  auto db = GenerateStatsDatabase(config);
  auto q = ParseSql(
      "SELECT COUNT(*) FROM users, posts, comments WHERE users.Id = "
      "posts.OwnerUserId AND posts.Id = comments.PostId AND posts.Score >= "
      "3;");
  ASSERT_TRUE(q.ok());
  TrueCardService svc(*db);
  auto plan = svc.BuildCountingPlan(*q);

  Executor executor(*db);
  auto result = executor.ExecuteCount(*plan, /*analyze=*/true);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->timed_out);

  // The root's actual equals the final count.
  ASSERT_TRUE(result->actual_rows.count(plan->table_mask) > 0);
  EXPECT_DOUBLE_EQ(result->actual_rows.at(plan->table_mask),
                   static_cast<double>(result->count));

  // Every materialized node's actual equals that sub-plan's exact count.
  for (const auto& [mask, rows] : result->actual_rows) {
    auto truth = svc.Card(q->Induced(mask));
    ASSERT_TRUE(truth.ok());
    EXPECT_DOUBLE_EQ(rows, *truth) << "mask " << mask;
  }

  // The rendering shows estimate and actual side by side.
  const std::string text = plan->ExplainAnalyze(result->actual_rows);
  EXPECT_NE(text.find("actual="), std::string::npos);
  EXPECT_EQ(text.find("actual=?"), std::string::npos);
}

TEST(ExplainAnalyzeTest, WithoutAnalyzeNoRowsAreCollected) {
  StatsGenConfig config;
  config.scale = 0.02;
  auto db = GenerateStatsDatabase(config);
  auto q = ParseSql(
      "SELECT COUNT(*) FROM users, badges WHERE users.Id = badges.UserId;");
  ASSERT_TRUE(q.ok());
  TrueCardService svc(*db);
  auto plan = svc.BuildCountingPlan(*q);
  auto result = Executor(*db).ExecuteCount(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->actual_rows.empty());
}

}  // namespace
}  // namespace cardbench
