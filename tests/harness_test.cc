#include <gtest/gtest.h>

#include <filesystem>

#include "harness/bench_env.h"

namespace cardbench {
namespace {

BenchFlags SmokeFlags() {
  BenchFlags flags;
  flags.fast = true;
  flags.scale = 0.05;
  flags.max_queries = 8;
  flags.exec_timeout = 10.0;
  flags.cache_dir = ::testing::TempDir() + "/cardbench_harness_cache";
  flags.training_queries = 100;
  return flags;
}

TEST(BenchFlagsTest, ParsesAllFlags) {
  const char* argv[] = {"prog",
                        "--fast",
                        "--scale=0.25",
                        "--max-queries=17",
                        "--exec-timeout=3.5",
                        "--estimators=PostgreSQL,FLAT",
                        "--training-queries=50",
                        "--seed=9"};
  const BenchFlags flags =
      ParseBenchFlags(8, const_cast<char**>(argv));
  EXPECT_TRUE(flags.fast);
  EXPECT_DOUBLE_EQ(flags.scale, 0.25);
  EXPECT_EQ(flags.max_queries, 17u);
  EXPECT_DOUBLE_EQ(flags.exec_timeout, 3.5);
  ASSERT_EQ(flags.estimators.size(), 2u);
  EXPECT_EQ(flags.estimators[1], "FLAT");
  EXPECT_EQ(flags.training_queries, 50u);
  EXPECT_EQ(flags.seed, 9u);
}

TEST(BenchEnvTest, EndToEndSmoke) {
  const BenchFlags flags = SmokeFlags();
  auto env_result = BenchEnv::Create(BenchDataset::kStats, flags);
  ASSERT_TRUE(env_result.ok()) << env_result.status().ToString();
  BenchEnv& env = **env_result;

  EXPECT_EQ(env.dataset_name(), "STATS");
  EXPECT_GT(env.query_contexts().size(), 0u);
  EXPECT_LE(env.query_contexts().size(), flags.max_queries);

  // Every context holds the full sub-plan card map and a positive
  // true-plan cost.
  for (const auto& ctx : env.query_contexts()) {
    EXPECT_EQ(ctx.true_cards.size(),
              EnumerateConnectedSubsets(*ctx.query).size());
    EXPECT_GT(ctx.true_plan_cost, 0.0);
  }

  // Oracle run: executes exactly, P-Error == 1 for every query.
  auto oracle = env.MakeNamedEstimator("TrueCard");
  ASSERT_TRUE(oracle.ok());
  const auto run = env.RunEstimator(**oracle);
  ASSERT_EQ(run.queries.size(), env.query_contexts().size());
  for (const auto& q : run.queries) {
    EXPECT_NEAR(q.p_error, 1.0, 1e-9) << q.query_name;
    EXPECT_FALSE(q.timed_out);
    // Oracle sub-plan Q-Errors are all exactly 1.
    for (double qe : q.subplan_qerrors) EXPECT_DOUBLE_EQ(qe, 1.0);
  }

  // A real estimator run: P-Error >= 1, inference time accounted.
  auto pg = env.MakeNamedEstimator("PostgreSQL");
  ASSERT_TRUE(pg.ok());
  const auto pg_run = env.RunEstimator(**pg);
  for (const auto& q : pg_run.queries) {
    EXPECT_GE(q.p_error, 1.0 - 1e-9);
    EXPECT_GE(q.plan_seconds, q.inference_seconds);
    EXPECT_GT(q.num_estimates, 0u);
  }
  EXPECT_GT(pg_run.EndToEndSeconds(), 0.0);
  EXPECT_FALSE(pg_run.AllQErrors().empty());
}

TEST(BenchEnvTest, TrueCardCachePersistsAcrossEnvs) {
  const BenchFlags flags = SmokeFlags();
  std::filesystem::remove_all(flags.cache_dir);
  {
    auto env = BenchEnv::Create(BenchDataset::kStats, flags);
    ASSERT_TRUE(env.ok());
  }
  // Second creation must find the cache file on disk.
  bool found = false;
  for (const auto& entry :
       std::filesystem::directory_iterator(flags.cache_dir)) {
    found |= entry.path().extension() == ".tsv";
  }
  EXPECT_TRUE(found);
  auto env = BenchEnv::Create(BenchDataset::kStats, flags);
  ASSERT_TRUE(env.ok());
  EXPECT_GT((*env)->truecard().cache_size(), 0u);
}

}  // namespace
}  // namespace cardbench
