#include "exec/join_hash.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"

namespace cardbench {
namespace {

/// JoinKeySource over plain vectors — the unit-test stand-in for the
/// executor's TupleSet-backed source.
class VectorKeySource final : public JoinKeySource {
 public:
  VectorKeySource(std::vector<Value> keys, std::vector<uint8_t> valid)
      : keys_(std::move(keys)), valid_(std::move(valid)) {}

  void GatherKeys(size_t lo, size_t hi, Value* keys,
                  uint8_t* valid) const override {
    for (size_t i = lo; i < hi; ++i) {
      keys[i - lo] = keys_[i];
      valid[i - lo] = valid_[i];
    }
  }

  size_t size() const { return keys_.size(); }
  const std::vector<Value>& keys() const { return keys_; }
  const std::vector<uint8_t>& valid() const { return valid_; }

 private:
  std::vector<Value> keys_;
  std::vector<uint8_t> valid_;
};

/// Random build input: `n` keys over a domain sized for heavy duplication,
/// with an occasional NULL.
VectorKeySource MakeInput(size_t n, uint64_t seed, int64_t domain,
                          double null_fraction = 0.05) {
  std::mt19937_64 rng(seed);
  std::vector<Value> keys(n);
  std::vector<uint8_t> valid(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = static_cast<Value>(rng() % static_cast<uint64_t>(domain));
    valid[i] =
        (rng() % 1000) < static_cast<uint64_t>(null_fraction * 1000) ? 0 : 1;
  }
  return VectorKeySource(std::move(keys), std::move(valid));
}

/// The semantics the table must reproduce: per-key build rows in ascending
/// order (vector push_back over ascending i), NULLs skipped.
std::unordered_map<Value, std::vector<uint32_t>> Reference(
    const VectorKeySource& input) {
  std::unordered_map<Value, std::vector<uint32_t>> ref;
  for (size_t i = 0; i < input.size(); ++i) {
    if (input.valid()[i]) {
      ref[input.keys()[i]].push_back(static_cast<uint32_t>(i));
    }
  }
  return ref;
}

/// Asserts the table enumerates exactly the reference postings, in the
/// reference (ascending build row) order, for every key in the reference
/// and for a batch of absent keys.
void ExpectMatchesReference(
    const JoinHashTable& table,
    const std::unordered_map<Value, std::vector<uint32_t>>& ref,
    int64_t domain) {
  size_t total = 0;
  for (const auto& [key, rows] : ref) {
    std::vector<uint32_t> got;
    EXPECT_TRUE(table.ForEachMatch(key, JoinKeyHash(key), [&](uint32_t row) {
      got.push_back(row);
      return true;
    }));
    EXPECT_EQ(got, rows) << "key=" << key;
    EXPECT_EQ(table.CountMatches(key, JoinKeyHash(key)), rows.size());
    total += rows.size();
  }
  EXPECT_EQ(table.num_entries(), total);
  for (int64_t miss = domain; miss < domain + 64; ++miss) {
    EXPECT_EQ(table.CountMatches(miss, JoinKeyHash(miss)), 0u)
        << "absent key " << miss;
  }
}

TEST(JoinHashTest, MatchesReferenceAcrossSizesAndFanouts) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{1000},
                   size_t{50000}}) {
    const int64_t domain = std::max<int64_t>(1, static_cast<int64_t>(n / 4));
    const auto input = MakeInput(n, /*seed=*/n + 1, domain);
    const auto ref = Reference(input);
    for (size_t radix_bits : {size_t{0}, size_t{3}, size_t{8}}) {
      for (bool arena : {true, false}) {
        JoinHashConfig config;
        config.radix_bits = radix_bits;
        config.use_arena = arena;
        JoinHashTable table;
        ASSERT_TRUE(table.Build(input, n, config, nullptr, nullptr))
            << "n=" << n << " radix_bits=" << radix_bits;
        ExpectMatchesReference(table, ref, domain);
      }
    }
  }
}

TEST(JoinHashTest, ParallelBuildIsDeterministic) {
  const size_t n = 200000;  // several morsels per worker
  const auto input = MakeInput(n, /*seed=*/7, /*domain=*/n / 8);
  const auto ref = Reference(input);
  ThreadPool pool(4);
  JoinMorselRunner runner = [&pool](size_t count,
                                    const std::function<void(size_t)>& fn) {
    ParallelFor(pool, count, fn);
  };
  for (size_t radix_bits : {size_t{0}, size_t{4}, size_t{8}}) {
    JoinHashConfig config;
    config.radix_bits = radix_bits;
    JoinHashTable table;
    ASSERT_TRUE(table.Build(input, n, config, runner, nullptr));
    ExpectMatchesReference(table, ref, static_cast<int64_t>(n / 8));
  }
}

TEST(JoinHashTest, PrefetchDistanceDoesNotAffectContents) {
  const size_t n = 30000;
  const auto input = MakeInput(n, /*seed=*/11, /*domain=*/1000);
  const auto ref = Reference(input);
  for (size_t distance : {size_t{0}, size_t{1}, size_t{64}}) {
    JoinHashConfig config;
    config.prefetch_distance = distance;
    JoinHashTable table;
    ASSERT_TRUE(table.Build(input, n, config, nullptr, nullptr));
    ExpectMatchesReference(table, ref, 1000);
  }
}

TEST(JoinHashTest, AllNullBuildJoinsNothing) {
  const size_t n = 1000;
  VectorKeySource input(std::vector<Value>(n, 42),
                        std::vector<uint8_t>(n, 0));
  JoinHashTable table;
  ASSERT_TRUE(table.Build(input, n, JoinHashConfig(), nullptr, nullptr));
  EXPECT_EQ(table.num_entries(), 0u);
  EXPECT_EQ(table.CountMatches(42, JoinKeyHash(42)), 0u);
}

TEST(JoinHashTest, SingleKeyHeavyDuplication) {
  // Every entry shares one key: the probe chain is one long run; order must
  // still be ascending and complete.
  const size_t n = 4096;
  VectorKeySource input(std::vector<Value>(n, -17),
                        std::vector<uint8_t>(n, 1));
  JoinHashTable table;
  ASSERT_TRUE(table.Build(input, n, JoinHashConfig(), nullptr, nullptr));
  std::vector<uint32_t> got;
  EXPECT_TRUE(table.ForEachMatch(-17, JoinKeyHash(-17), [&](uint32_t row) {
    got.push_back(row);
    return true;
  }));
  ASSERT_EQ(got.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(got[i], static_cast<uint32_t>(i));
  }
}

TEST(JoinHashTest, ForEachMatchStopsWhenCallbackDeclines) {
  const size_t n = 100;
  VectorKeySource input(std::vector<Value>(n, 5), std::vector<uint8_t>(n, 1));
  JoinHashTable table;
  ASSERT_TRUE(table.Build(input, n, JoinHashConfig(), nullptr, nullptr));
  size_t seen = 0;
  EXPECT_FALSE(table.ForEachMatch(5, JoinKeyHash(5), [&](uint32_t) {
    return ++seen < 10;
  }));
  EXPECT_EQ(seen, 10u);
}

TEST(JoinHashTest, BuildAbortsWhenBudgetTrips) {
  const size_t n = 100000;
  const auto input = MakeInput(n, /*seed=*/3, /*domain=*/1000);
  JoinHashConfig config;
  JoinHashTable table;
  EXPECT_FALSE(
      table.Build(input, n, config, nullptr, [] { return false; }));
}

TEST(JoinHashTest, RadixBitsClampedToMaximum) {
  const size_t n = 64;
  const auto input = MakeInput(n, /*seed=*/5, /*domain=*/16, 0.0);
  JoinHashConfig config;
  config.radix_bits = 40;  // absurd; must clamp, not allocate 2^40 parts
  JoinHashTable table;
  ASSERT_TRUE(table.Build(input, n, config, nullptr, nullptr));
  EXPECT_EQ(table.fanout(),
            size_t{1} << JoinHashConfig::kMaxRadixBits);
  ExpectMatchesReference(table, Reference(input), 16);
}

}  // namespace
}  // namespace cardbench
