#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "gtest/gtest.h"
#include "ml/matrix.h"
#include "ml/nn.h"

namespace cardbench {
namespace {

using simd::Cmp;
using simd::KernelTable;
using simd::Level;

// Every tier the host can execute, scalar first. The parity tests compare
// each higher tier against the scalar reference bit for bit.
std::vector<Level> AvailableLevels() {
  std::vector<Level> levels = {Level::kScalar};
  for (Level l : {Level::kSse2, Level::kAvx2, Level::kAvx512}) {
    if (l <= simd::DetectLevel()) levels.push_back(l);
  }
  return levels;
}

// Sizes crossing every vector-width boundary (1/2/4/8 lanes) plus tails.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 63, 64, 65, 200, 1000};

// Offsets 0..3 shift the data off 32-byte alignment; all kernels take
// unaligned pointers.
const size_t kOffsets[] = {0, 1, 2, 3};

std::vector<double> RandomDoubles(Rng& rng, size_t n, size_t pad) {
  std::vector<double> v(n + pad);
  for (double& x : v) x = rng.NextDouble() * 200.0 - 100.0;
  return v;
}

TEST(KernelParityTest, ElementwiseKernelsBitIdentical) {
  Rng rng(7);
  for (size_t n : kSizes) {
    for (size_t off : kOffsets) {
      const std::vector<double> x0 = RandomDoubles(rng, n, off);
      const std::vector<double> d0 = RandomDoubles(rng, n, off);
      const double a = rng.NextDouble() * 4.0 - 2.0;
      // Scalar reference results for each kernel.
      const KernelTable& ref = simd::KernelsFor(Level::kScalar);
      std::vector<double> axpy_ref = d0, add_ref = d0, scale_ref = x0,
                          bias_ref = x0, relu_ref = x0;
      ref.axpy(axpy_ref.data() + off, x0.data() + off, a, n);
      ref.vec_add(add_ref.data() + off, x0.data() + off, n);
      ref.vec_scale(scale_ref.data() + off, a, n);
      ref.add_bias(bias_ref.data() + off, d0.data() + off, n);
      ref.relu(relu_ref.data() + off, n);
      for (Level level : AvailableLevels()) {
        const KernelTable& kt = simd::KernelsFor(level);
        std::vector<double> axpy = d0, add = d0, scale = x0, bias = x0,
                            relu = x0;
        kt.axpy(axpy.data() + off, x0.data() + off, a, n);
        kt.vec_add(add.data() + off, x0.data() + off, n);
        kt.vec_scale(scale.data() + off, a, n);
        kt.add_bias(bias.data() + off, d0.data() + off, n);
        kt.relu(relu.data() + off, n);
        const size_t bytes = axpy_ref.size() * sizeof(double);
        EXPECT_EQ(0, std::memcmp(axpy.data(), axpy_ref.data(), bytes))
            << "axpy " << simd::LevelName(level) << " n=" << n;
        EXPECT_EQ(0, std::memcmp(add.data(), add_ref.data(), bytes))
            << "vec_add " << simd::LevelName(level) << " n=" << n;
        EXPECT_EQ(0, std::memcmp(scale.data(), scale_ref.data(), bytes))
            << "vec_scale " << simd::LevelName(level) << " n=" << n;
        EXPECT_EQ(0, std::memcmp(bias.data(), bias_ref.data(), bytes))
            << "add_bias " << simd::LevelName(level) << " n=" << n;
        EXPECT_EQ(0, std::memcmp(relu.data(), relu_ref.data(), bytes))
            << "relu " << simd::LevelName(level) << " n=" << n;
      }
    }
  }
}

TEST(KernelParityTest, ReluTiesAndSpecialsMatchScalar) {
  // -0.0 must map to +0.0 and NaN to +0.0 in every tier (maxpd semantics,
  // mirrored by the scalar tier).
  const double specials[] = {-0.0, +0.0, std::numeric_limits<double>::quiet_NaN(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::infinity(), -1.5, 2.5};
  const size_t n = sizeof(specials) / sizeof(specials[0]);
  std::vector<double> ref(specials, specials + n);
  simd::KernelsFor(Level::kScalar).relu(ref.data(), n);
  for (Level level : AvailableLevels()) {
    std::vector<double> x(specials, specials + n);
    simd::KernelsFor(level).relu(x.data(), n);
    EXPECT_EQ(0, std::memcmp(x.data(), ref.data(), n * sizeof(double)))
        << simd::LevelName(level);
  }
}

TEST(KernelParityTest, DotBitIdenticalAcrossTiers) {
  Rng rng(11);
  for (size_t n : kSizes) {
    for (size_t off : kOffsets) {
      const std::vector<double> a = RandomDoubles(rng, n, off);
      const std::vector<double> b = RandomDoubles(rng, n, off);
      const double ref =
          simd::KernelsFor(Level::kScalar).dot(a.data() + off, b.data() + off, n);
      for (Level level : AvailableLevels()) {
        const double got =
            simd::KernelsFor(level).dot(a.data() + off, b.data() + off, n);
        EXPECT_EQ(0, std::memcmp(&got, &ref, sizeof(double)))
            << "dot " << simd::LevelName(level) << " n=" << n << " off=" << off
            << " ref=" << ref << " got=" << got;
      }
    }
  }
}

TEST(KernelParityTest, FilterRangeMatchesScalarForAllOps) {
  Rng rng(13);
  const Cmp kOps[] = {Cmp::kEq, Cmp::kNeq, Cmp::kLt, Cmp::kLe, Cmp::kGt, Cmp::kGe};
  for (size_t n : kSizes) {
    // Small value domain so every comparison outcome is exercised.
    std::vector<int64_t> values(n);
    std::vector<uint8_t> valid(n);
    for (size_t i = 0; i < n; ++i) {
      values[i] = static_cast<int64_t>(rng.NextUint64(7)) - 3;
      valid[i] = rng.NextUint64(4) != 0;  // ~25% nulls
    }
    for (Cmp op : kOps) {
      for (size_t begin : {size_t{0}, std::min<size_t>(n, 3)}) {
        std::vector<uint32_t> ref(n - begin + 8, 0xDEADBEEF);
        const size_t ref_count = simd::KernelsFor(Level::kScalar).filter_range(
            values.data(), valid.data(), begin, n, op, 1, ref.data());
        for (Level level : AvailableLevels()) {
          std::vector<uint32_t> out(n - begin + 8, 0xDEADBEEF);
          const size_t count = simd::KernelsFor(level).filter_range(
              values.data(), valid.data(), begin, n, op, 1, out.data());
          ASSERT_EQ(ref_count, count)
              << "filter_range " << simd::LevelName(level) << " n=" << n
              << " op=" << static_cast<int>(op);
          EXPECT_EQ(0, std::memcmp(out.data(), ref.data(),
                                   count * sizeof(uint32_t)))
              << "filter_range " << simd::LevelName(level) << " n=" << n;
        }
      }
    }
  }
}

TEST(KernelParityTest, FilterRowsMatchesScalarForAllOps) {
  Rng rng(17);
  const Cmp kOps[] = {Cmp::kEq, Cmp::kNeq, Cmp::kLt, Cmp::kLe, Cmp::kGt, Cmp::kGe};
  const size_t kNumValues = 512;
  std::vector<int64_t> values(kNumValues);
  std::vector<uint8_t> valid(kNumValues);
  for (size_t i = 0; i < kNumValues; ++i) {
    values[i] = static_cast<int64_t>(rng.NextUint64(7)) - 3;
    valid[i] = rng.NextUint64(4) != 0;
  }
  for (size_t n : kSizes) {
    // Unsorted, duplicated row ids — the kernel contract only needs ids
    // < 2^31, not sortedness.
    std::vector<uint32_t> rows0(n);
    for (uint32_t& r : rows0) {
      r = static_cast<uint32_t>(rng.NextUint64(kNumValues));
    }
    for (Cmp op : kOps) {
      std::vector<uint32_t> ref = rows0;
      const size_t ref_count = simd::KernelsFor(Level::kScalar).filter_rows(
          values.data(), valid.data(), ref.data(), n, op, 0);
      for (Level level : AvailableLevels()) {
        std::vector<uint32_t> rows = rows0;
        const size_t count = simd::KernelsFor(level).filter_rows(
            values.data(), valid.data(), rows.data(), n, op, 0);
        ASSERT_EQ(ref_count, count)
            << "filter_rows " << simd::LevelName(level) << " n=" << n
            << " op=" << static_cast<int>(op);
        EXPECT_EQ(0,
                  std::memcmp(rows.data(), ref.data(), count * sizeof(uint32_t)))
            << "filter_rows " << simd::LevelName(level) << " n=" << n;
      }
    }
  }
}

TEST(KernelParityTest, GatherMatchesScalar) {
  Rng rng(19);
  const size_t kNumValues = 300;
  std::vector<int64_t> values(kNumValues);
  std::vector<uint8_t> valid(kNumValues);
  for (size_t i = 0; i < kNumValues; ++i) {
    values[i] = static_cast<int64_t>(rng.NextUint64()) - (1ll << 40);
    valid[i] = rng.NextUint64(3) != 0;
  }
  for (size_t n : kSizes) {
    std::vector<uint32_t> rows(n);
    for (uint32_t& r : rows) {
      r = static_cast<uint32_t>(rng.NextUint64(kNumValues));
    }
    std::vector<int64_t> keys_ref(n + 1, -1);
    std::vector<uint8_t> valid_ref(n + 1, 0xCC);
    simd::KernelsFor(Level::kScalar).gather(values.data(), valid.data(),
                                            rows.data(), n, keys_ref.data(),
                                            valid_ref.data());
    for (Level level : AvailableLevels()) {
      std::vector<int64_t> keys(n + 1, -1);
      std::vector<uint8_t> valid_out(n + 1, 0xCC);
      simd::KernelsFor(level).gather(values.data(), valid.data(), rows.data(),
                                     n, keys.data(), valid_out.data());
      EXPECT_EQ(0, std::memcmp(keys.data(), keys_ref.data(),
                               keys_ref.size() * sizeof(int64_t)))
          << "gather keys " << simd::LevelName(level) << " n=" << n;
      EXPECT_EQ(0, std::memcmp(valid_out.data(), valid_ref.data(),
                               valid_ref.size()))
          << "gather valid " << simd::LevelName(level) << " n=" << n;
    }
  }
}

// End-to-end: the ML layer's matrix products and an Mlp forward pass must
// produce bit-identical doubles no matter which tier is active.
TEST(KernelParityTest, MatrixAndMlpBitIdenticalUnderForcedLevels) {
  Rng rng(23);
  const size_t kRows = 17, kInner = 33, kCols = 9;
  Matrix a(kRows, kInner), b(kInner, kCols), bt(kCols, kInner);
  for (size_t r = 0; r < kRows; ++r) {
    for (size_t c = 0; c < kInner; ++c) {
      a.At(r, c) = rng.NextDouble() * 2.0 - 1.0;
    }
  }
  for (size_t r = 0; r < kInner; ++r) {
    for (size_t c = 0; c < kCols; ++c) {
      b.At(r, c) = rng.NextDouble() * 2.0 - 1.0;
      bt.At(c, r) = b.At(r, c);
    }
  }
  Rng mlp_rng(29);
  Mlp mlp({kInner, 8, 1}, mlp_rng);
  Matrix x(3, kInner);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < kInner; ++c) x.At(r, c) = rng.NextDouble();
  }

  simd::ForceLevel(Level::kScalar);
  const Matrix mm_ref = a.MatMul(b);
  const Matrix mmt_ref = a.MatMulTransposed(bt);
  const Matrix mlp_ref = mlp.Infer(x);
  for (Level level : AvailableLevels()) {
    simd::ForceLevel(level);
    const Matrix mm = a.MatMul(b);
    const Matrix mmt = a.MatMulTransposed(bt);
    const Matrix out = mlp.Infer(x);
    EXPECT_EQ(0, std::memcmp(mm.data().data(), mm_ref.data().data(),
                             mm.data().size() * sizeof(double)))
        << "MatMul " << simd::LevelName(level);
    EXPECT_EQ(0, std::memcmp(mmt.data().data(), mmt_ref.data().data(),
                             mmt.data().size() * sizeof(double)))
        << "MatMulTransposed " << simd::LevelName(level);
    EXPECT_EQ(0, std::memcmp(out.data().data(), mlp_ref.data().data(),
                             out.data().size() * sizeof(double)))
        << "Mlp::Infer " << simd::LevelName(level);
  }
  simd::ClearForcedLevel();
}

TEST(KernelParityTest, DispatchRespectsEnvironmentClamp) {
  // ActiveLevel() never exceeds what the CPU supports; under
  // CARDBENCH_SIMD=scalar (the kernel_parity_scalar ctest entry) it must be
  // exactly the scalar tier.
  EXPECT_LE(static_cast<int>(simd::ActiveLevel()),
            static_cast<int>(simd::DetectLevel()));
  const char* env = std::getenv("CARDBENCH_SIMD");
  if (env != nullptr) {
    simd::Level parsed;
    ASSERT_TRUE(simd::ParseLevelName(env, &parsed));
    EXPECT_LE(static_cast<int>(simd::ActiveLevel()),
              static_cast<int>(parsed));
  }
}

TEST(KernelParityTest, LevelNamesRoundTrip) {
  for (Level l : {Level::kScalar, Level::kSse2, Level::kAvx2, Level::kAvx512}) {
    Level parsed;
    ASSERT_TRUE(simd::ParseLevelName(simd::LevelName(l), &parsed));
    EXPECT_EQ(l, parsed);
  }
  Level parsed;
  EXPECT_FALSE(simd::ParseLevelName("mmx", &parsed));
  EXPECT_FALSE(simd::ParseLevelName("", &parsed));
}

}  // namespace
}  // namespace cardbench
