#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "cardest/autoregressive_est.h"
#include "cardest/foj_sampler.h"
#include "cardest/lw_est.h"
#include "cardest/mscn_est.h"
#include "cardest/registry.h"
#include "datagen/imdb_gen.h"
#include "datagen/stats_gen.h"
#include "exec/true_card.h"
#include "query/parser.h"
#include "workload/workload_gen.h"

namespace cardbench {
namespace {

double QError(double estimate, double truth) {
  const double e = std::max(estimate, 1.0);
  const double t = std::max(truth, 1.0);
  return std::max(e / t, t / e);
}

class LearnedEstTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StatsGenConfig config;
    config.scale = 0.04;
    db_ = GenerateStatsDatabase(config).release();
    truecard_ = new TrueCardService(*db_);
    auto training = GenerateTrainingQueries(*db_, *truecard_, 500, 77);
    ASSERT_TRUE(training.ok());
    training_ = new std::vector<TrainingQuery>(std::move(*training));
  }
  static void TearDownTestSuite() {
    delete training_;
    delete truecard_;
    delete db_;
  }

  static Query Parse(const std::string& sql) {
    auto q = ParseSql(sql);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  static Database* db_;
  static TrueCardService* truecard_;
  static std::vector<TrainingQuery>* training_;
};

Database* LearnedEstTest::db_ = nullptr;
TrueCardService* LearnedEstTest::truecard_ = nullptr;
std::vector<TrainingQuery>* LearnedEstTest::training_ = nullptr;

double MedianTrainingQError(CardinalityEstimator& est,
                            const std::vector<TrainingQuery>& training) {
  std::vector<double> qerrors;
  for (size_t i = 0; i < training.size(); i += 3) {
    qerrors.push_back(
        QError(est.EstimateCard(training[i].query), training[i].cardinality));
  }
  std::nth_element(qerrors.begin(), qerrors.begin() + qerrors.size() / 2,
                   qerrors.end());
  return qerrors[qerrors.size() / 2];
}

TEST_F(LearnedEstTest, MscnFitsItsTrainingDistribution) {
  MscnOptions options;
  options.epochs = 15;
  MscnEstimator est(*db_, *training_, options);
  EXPECT_LT(MedianTrainingQError(est, *training_), 6.0);
  EXPECT_GT(est.ModelBytes(), 1000u);
  EXPECT_GT(est.TrainSeconds(), 0.0);
}

TEST_F(LearnedEstTest, LwNnFitsItsTrainingDistribution) {
  LwNnOptions options;
  options.epochs = 30;
  LwNnEstimator est(*db_, *training_, options);
  EXPECT_LT(MedianTrainingQError(est, *training_), 6.0);
}

TEST_F(LearnedEstTest, LwXgbFitsItsTrainingDistribution) {
  LwXgbEstimator est(*db_, *training_);
  EXPECT_LT(MedianTrainingQError(est, *training_), 4.0);
}

TEST_F(LearnedEstTest, QueryDrivenMethodsDoNotSupportUpdate) {
  // O9: query-driven models would need a fresh executed workload.
  LwXgbEstimator est(*db_, *training_);
  EXPECT_FALSE(est.SupportsUpdate());
  EXPECT_FALSE(est.Update().ok());
}

TEST_F(LearnedEstTest, FojSamplerInvariants) {
  FojSampler sampler(*db_);
  EXPECT_EQ(sampler.bfs_order().size(), db_->num_tables());
  EXPECT_EQ(sampler.edges().size(), db_->num_tables() - 1);
  EXPECT_GT(sampler.foj_size(), 0.0);

  // Sampled tuples must be join-consistent: whenever parent and child are
  // both present, their join keys match.
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    const auto tuple = sampler.SampleTuple(rng);
    EXPECT_GE(tuple[0], 0);  // root always present
    for (const auto& edge : sampler.edges()) {
      const int64_t prow = tuple[edge.parent_idx];
      const int64_t crow = tuple[edge.child_idx];
      if (prow < 0) EXPECT_LT(crow, 0);  // absent parent -> absent subtree
      if (prow < 0 || crow < 0) continue;
      const Table& parent =
          db_->TableOrDie(sampler.bfs_order()[edge.parent_idx]);
      const Table& child =
          db_->TableOrDie(sampler.bfs_order()[edge.child_idx]);
      const Column& pk = parent.ColumnByName(edge.parent_col);
      const Column& ck = child.ColumnByName(edge.child_col);
      ASSERT_TRUE(pk.IsValid(static_cast<size_t>(prow)));
      ASSERT_TRUE(ck.IsValid(static_cast<size_t>(crow)));
      EXPECT_EQ(pk.Get(static_cast<size_t>(prow)),
                ck.Get(static_cast<size_t>(crow)));
    }
  }
}

TEST_F(LearnedEstTest, FojSamplerUpwardTimesWeightCountsTuples) {
  // Sum over any table of U_t(r) * w_t(r) equals |FOJ| restricted to
  // tuples where t is present; for the root it is exactly |FOJ|.
  FojSampler sampler(*db_);
  const Table& root = db_->TableOrDie(sampler.bfs_order()[0]);
  double total = 0;
  for (size_t row = 0; row < root.num_rows(); ++row) {
    total += sampler.Upward(0, static_cast<uint32_t>(row)) *
             sampler.SubtreeWeight(0, static_cast<uint32_t>(row));
  }
  EXPECT_NEAR(total, sampler.foj_size(), sampler.foj_size() * 1e-9);
}

TEST_F(LearnedEstTest, NeuroCardSingleTableReasonable) {
  ArOptions options;
  options.training_samples = 4000;
  options.epochs = 8;
  options.hidden_units = 64;
  options.progressive_samples = 128;
  AutoregressiveEstimator est(*db_, ArTraining::kData, nullptr, options);

  const Query q = Parse("SELECT COUNT(*) FROM posts WHERE posts.PostTypeId = 1;");
  auto truth = truecard_->Card(q);
  ASSERT_TRUE(truth.ok());
  EXPECT_LT(QError(est.EstimateCard(q), *truth), 8.0);
}

TEST_F(LearnedEstTest, NeuroCardJoinsWellOnEasyStarSchema) {
  // The paper's O3: NeuroCard is competitive on the simple IMDB star
  // schema but falls apart on STATS. Verify the "works when the FOJ is
  // learnable" half on the IMDB-like database.
  ImdbGenConfig config;
  config.scale = 0.03;
  auto imdb = GenerateImdbDatabase(config);
  TrueCardService svc(*imdb);
  ArOptions options;
  options.training_samples = 4000;
  options.epochs = 8;
  options.hidden_units = 64;
  options.progressive_samples = 128;
  AutoregressiveEstimator est(*imdb, ArTraining::kData, nullptr, options);

  const Query q = Parse(
      "SELECT COUNT(*) FROM title, movie_keyword WHERE title.id = "
      "movie_keyword.movie_id;");
  auto truth = svc.Card(q);
  ASSERT_TRUE(truth.ok());
  EXPECT_LT(QError(est.EstimateCard(q), *truth), 12.0);
}

TEST_F(LearnedEstTest, NeuroCardStaysFiniteOnHardStatsJoins) {
  // On STATS the paper measures catastrophic NeuroCard Q-Errors (median
  // 951, 99th percentile 6e8 — Table 7); the contract here is only that
  // estimates are finite and positive so the optimizer can proceed.
  ArOptions options;
  options.training_samples = 2000;
  options.epochs = 3;
  options.hidden_units = 48;
  options.progressive_samples = 64;
  AutoregressiveEstimator est(*db_, ArTraining::kData, nullptr, options);

  const Query q = Parse(
      "SELECT COUNT(*) FROM users, badges WHERE users.Id = badges.UserId;");
  const double estimate = est.EstimateCard(q);
  EXPECT_GT(estimate, 0.0);
  EXPECT_TRUE(std::isfinite(estimate));
}

TEST_F(LearnedEstTest, NeuroCardFallsBackOffTree) {
  ArOptions options;
  options.training_samples = 1000;
  options.epochs = 2;
  options.hidden_units = 48;
  options.progressive_samples = 64;
  AutoregressiveEstimator est(*db_, ArTraining::kData, nullptr, options);
  // FK-FK shortcut join that cannot lie on the spanning tree.
  const Query q = Parse(
      "SELECT COUNT(*) FROM comments, badges WHERE comments.UserId = "
      "badges.UserId;");
  const double estimate = est.EstimateCard(q);
  EXPECT_GE(estimate, 1.0);
  EXPECT_TRUE(std::isfinite(estimate));
}

TEST_F(LearnedEstTest, RegistryBuildsEveryEstimator) {
  EstimatorConfig config;
  config.fast = true;
  for (const auto& name : AllEstimatorNames()) {
    auto est = MakeEstimator(name, *db_, *truecard_, training_, config);
    ASSERT_TRUE(est.ok()) << name << ": " << est.status().ToString();
    EXPECT_EQ((*est)->name(), name);
    const Query q = Parse(
        "SELECT COUNT(*) FROM users, badges WHERE users.Id = badges.UserId "
        "AND users.Reputation >= 5;");
    const double estimate = (*est)->EstimateCard(q);
    EXPECT_GT(estimate, 0.0) << name;
    EXPECT_TRUE(std::isfinite(estimate)) << name;
  }
}

TEST_F(LearnedEstTest, RegistryRejectsUnknownName) {
  EXPECT_FALSE(MakeEstimator("Nonsense", *db_, *truecard_, nullptr).ok());
}

TEST_F(LearnedEstTest, QueryDrivenWithoutTrainingRejected) {
  EXPECT_FALSE(MakeEstimator("MSCN", *db_, *truecard_, nullptr).ok());
}

}  // namespace
}  // namespace cardbench
