#include <gtest/gtest.h>

#include "metrics/metrics.h"

namespace cardbench {
namespace {

TEST(QErrorTest, SymmetricAndClampedAtOne) {
  EXPECT_DOUBLE_EQ(QError(10, 100), 10.0);
  EXPECT_DOUBLE_EQ(QError(100, 10), 10.0);
  EXPECT_DOUBLE_EQ(QError(50, 50), 1.0);
  // Sub-row values clamp to 1 (the paper's convention).
  EXPECT_DOUBLE_EQ(QError(0.0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(QError(0.1, 10), 10.0);
}

TEST(PercentilesTest, NearestRankOnKnownData) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(i);
  const Percentiles p = ComputePercentiles(values);
  EXPECT_DOUBLE_EQ(p.p50, 51);
  EXPECT_DOUBLE_EQ(p.p90, 91);
  EXPECT_DOUBLE_EQ(p.p99, 100);
  EXPECT_DOUBLE_EQ(p.max, 100);
}

TEST(PercentilesTest, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(ComputePercentiles({}).p50, 0.0);
  const Percentiles p = ComputePercentiles({7.0});
  EXPECT_DOUBLE_EQ(p.p50, 7.0);
  EXPECT_DOUBLE_EQ(p.p99, 7.0);
}

TEST(PercentilesTest, UnsortedInputHandled) {
  const Percentiles p = ComputePercentiles({5, 1, 3, 2, 4});
  EXPECT_DOUBLE_EQ(p.p50, 3);
  EXPECT_DOUBLE_EQ(p.max, 5);
}

TEST(CorrelationTest, PerfectLinearRelationship) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelationOf(x, y), 1.0, 1e-12);
  std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelationOf(x, neg), -1.0, 1e-12);
}

TEST(CorrelationTest, DegenerateInputsReturnZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelationOf({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelationOf({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(SpearmanCorrelationOf({}, {}), 0.0);
}

TEST(CorrelationTest, SpearmanCapturesMonotoneNonlinear) {
  std::vector<double> x, y;
  for (int i = 1; i <= 30; ++i) {
    x.push_back(i);
    y.push_back(i * i * i);  // monotone but nonlinear
  }
  EXPECT_NEAR(SpearmanCorrelationOf(x, y), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelationOf(x, y), 1.0);
}

TEST(CorrelationTest, SpearmanHandlesTies) {
  std::vector<double> x = {1, 2, 2, 3};
  std::vector<double> y = {10, 20, 20, 30};
  EXPECT_NEAR(SpearmanCorrelationOf(x, y), 1.0, 1e-12);
}

}  // namespace
}  // namespace cardbench
