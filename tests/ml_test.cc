#include <gtest/gtest.h>

#include <cmath>

#include "ml/clustering.h"
#include "ml/gbdt.h"
#include "ml/made.h"
#include "ml/matrix.h"
#include "ml/nn.h"

namespace cardbench {
namespace {

TEST(MatrixTest, MatMulAgainstHandComputedValues) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  double av[] = {1, 2, 3, 4, 5, 6};
  double bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(std::begin(av), std::end(av), a.data().begin());
  std::copy(std::begin(bv), std::end(bv), b.data().begin());
  const Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 58);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 64);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 139);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 154);
}

TEST(MatrixTest, MatMulTransposedMatchesMatMul) {
  Rng rng(1);
  Matrix a(3, 4), b(5, 4);
  for (double& v : a.data()) v = rng.NextGaussian();
  for (double& v : b.data()) v = rng.NextGaussian();
  // a * b^T via both paths.
  Matrix bt(4, 5);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 4; ++j) bt.At(j, i) = b.At(i, j);
  }
  const Matrix direct = a.MatMul(bt);
  const Matrix fused = a.MatMulTransposed(b);
  for (size_t i = 0; i < direct.data().size(); ++i) {
    EXPECT_NEAR(direct.data()[i], fused.data()[i], 1e-12);
  }
}

TEST(MatrixTest, TransposedMatMulMatchesManual) {
  Rng rng(2);
  Matrix a(6, 3), b(6, 2);
  for (double& v : a.data()) v = rng.NextGaussian();
  for (double& v : b.data()) v = rng.NextGaussian();
  const Matrix out = a.TransposedMatMul(b);  // (3x2)
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      double acc = 0;
      for (size_t k = 0; k < 6; ++k) acc += a.At(k, i) * b.At(k, j);
      EXPECT_NEAR(out.At(i, j), acc, 1e-12);
    }
  }
}

TEST(MlpTest, FitsLinearFunction) {
  Rng rng(3);
  Mlp net({2, 16, 1}, rng);
  // y = 3x0 - 2x1 + 1
  const size_t n = 256;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x.At(i, 0) = rng.NextDouble();
    x.At(i, 1) = rng.NextDouble();
    y[i] = 3 * x.At(i, 0) - 2 * x.At(i, 1) + 1;
  }
  double first_loss = 0, last_loss = 0;
  for (int epoch = 0; epoch < 300; ++epoch) {
    Matrix out = net.Forward(x);
    Matrix grad;
    const double loss = MseLoss(out, y, &grad);
    if (epoch == 0) first_loss = loss;
    last_loss = loss;
    net.Backward(grad);
    net.Step(1e-2);
  }
  EXPECT_LT(last_loss, first_loss * 0.01);
  EXPECT_LT(last_loss, 0.01);
}

TEST(MlpTest, FitsNonlinearXor) {
  Rng rng(4);
  Mlp net({2, 16, 16, 1}, rng);
  Matrix x(4, 2);
  std::vector<double> y = {0, 1, 1, 0};
  const double pts[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  for (size_t i = 0; i < 4; ++i) {
    x.At(i, 0) = pts[i][0];
    x.At(i, 1) = pts[i][1];
  }
  double loss = 0;
  for (int epoch = 0; epoch < 2000; ++epoch) {
    Matrix out = net.Forward(x);
    Matrix grad;
    loss = MseLoss(out, y, &grad);
    net.Backward(grad);
    net.Step(5e-3);
  }
  EXPECT_LT(loss, 0.01);
}

TEST(MlpTest, InferMatchesForward) {
  Rng rng(5);
  Mlp net({3, 8, 2}, rng);
  Matrix x(4, 3);
  for (double& v : x.data()) v = rng.NextGaussian();
  const Matrix a = net.Forward(x);
  const Matrix b = net.Infer(x);
  for (size_t i = 0; i < a.data().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(SoftmaxTest, RowsSumToOneWithinSegment) {
  Matrix m(2, 5, 0.5);
  m.At(0, 1) = 3.0;
  SoftmaxRows(m, 1, 4);
  for (size_t r = 0; r < 2; ++r) {
    double sum = 0;
    for (size_t c = 1; c < 4; ++c) sum += m.At(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  // Columns outside the segment untouched.
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(m.At(1, 4), 0.5);
}

TEST(MadeTest, RespectsAutoregressiveProperty) {
  Rng rng(6);
  MadeModel made({4, 3, 5}, 32, 2, rng);
  // P(col 1 | col 0) must not depend on columns 1, 2 inputs.
  std::vector<std::vector<uint16_t>> prefix = {{2, 0, 0}};
  const Matrix base = made.EncodePrefixes(prefix, 1);
  Matrix poisoned = base;
  poisoned.At(0, made.ColumnOffset(1) + 1) = 1.0;  // junk in col 1
  poisoned.At(0, made.ColumnOffset(2) + 4) = 1.0;  // junk in col 2
  const Matrix p_base = made.ConditionalProbs(base, 1);
  const Matrix p_poisoned = made.ConditionalProbs(poisoned, 1);
  for (size_t b = 0; b < 3; ++b) {
    EXPECT_NEAR(p_base.At(0, b), p_poisoned.At(0, b), 1e-12);
  }
}

TEST(MadeTest, LearnsCorrelatedJointDistribution) {
  Rng rng(7);
  // Joint: x0 ~ uniform{0,1}; x1 == x0 with prob 0.9.
  std::vector<std::vector<uint16_t>> rows;
  for (int i = 0; i < 3000; ++i) {
    const uint16_t x0 = rng.NextBool(0.5) ? 1 : 0;
    const uint16_t x1 =
        rng.NextBool(0.9) ? x0 : static_cast<uint16_t>(1 - x0);
    rows.push_back({x0, x1});
  }
  MadeModel made({2, 2}, 16, 1, rng);
  for (int epoch = 0; epoch < 30; ++epoch) {
    made.TrainEpoch(rows, 64, 5e-3, rng);
  }
  // P(x1 = 1 | x0 = 1) should approach 0.9.
  std::vector<std::vector<uint16_t>> prefix = {{1, 0}};
  const Matrix enc = made.EncodePrefixes(prefix, 1);
  const Matrix probs = made.ConditionalProbs(enc, 1);
  EXPECT_NEAR(probs.At(0, 1), 0.9, 0.06);
}

TEST(MadeTest, TrainingReducesNll) {
  Rng rng(8);
  std::vector<std::vector<uint16_t>> rows;
  for (int i = 0; i < 1000; ++i) {
    const uint16_t a = static_cast<uint16_t>(rng.NextZipf(6, 1.2));
    rows.push_back({a, static_cast<uint16_t>((a * 2) % 5)});
  }
  MadeModel made({6, 5}, 24, 2, rng);
  const double before = made.EvalNll(rows);
  for (int epoch = 0; epoch < 25; ++epoch) made.TrainEpoch(rows, 64, 5e-3, rng);
  const double after = made.EvalNll(rows);
  EXPECT_LT(after, before * 0.8);
}

TEST(GbdtTest, FitsStepFunction) {
  Rng rng(9);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.NextDouble();
    const double w = rng.NextDouble();
    x.push_back({v, w});
    y.push_back((v > 0.5 ? 10.0 : 0.0) + (w > 0.25 ? 5.0 : 0.0));
  }
  GbdtRegressor gbdt;
  gbdt.Fit(x, y);
  double se = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double d = gbdt.Predict(x[i]) - y[i];
    se += d * d;
  }
  EXPECT_LT(se / static_cast<double>(x.size()), 0.5);
}

TEST(GbdtTest, BeatsMeanPredictor) {
  Rng rng(10);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  double mean = 0;
  for (int i = 0; i < 400; ++i) {
    const double v = rng.NextDouble() * 4;
    x.push_back({v});
    y.push_back(v * v);
    mean += v * v;
  }
  mean /= static_cast<double>(y.size());
  double mean_se = 0;
  for (double t : y) mean_se += (t - mean) * (t - mean);
  GbdtRegressor gbdt;
  gbdt.Fit(x, y);
  double se = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double d = gbdt.Predict(x[i]) - y[i];
    se += d * d;
  }
  EXPECT_LT(se, mean_se * 0.05);
}

TEST(ClusteringTest, TwoMeansSeparatesBlobs) {
  Rng rng(11);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back({rng.NextGaussian() * 0.2, rng.NextGaussian() * 0.2});
  }
  for (int i = 0; i < 100; ++i) {
    rows.push_back({10 + rng.NextGaussian() * 0.2, 10 + rng.NextGaussian() * 0.2});
  }
  const auto labels = TwoMeans(rows, rng);
  // All of blob A one label, all of blob B the other.
  for (int i = 1; i < 100; ++i) EXPECT_EQ(labels[i], labels[0]);
  for (int i = 101; i < 200; ++i) EXPECT_EQ(labels[i], labels[100]);
  EXPECT_NE(labels[0], labels[100]);
}

TEST(ClusteringTest, TwoMeansAlwaysSplitsNonTrivially) {
  Rng rng(12);
  std::vector<std::vector<double>> rows(50, {1.0});  // identical rows
  const auto labels = TwoMeans(rows, rng);
  size_t ones = 0;
  for (int l : labels) ones += static_cast<size_t>(l);
  EXPECT_GT(ones, 0u);
  EXPECT_LT(ones, rows.size());
}

TEST(ClusteringTest, DependenceScoreHighForMonotone) {
  std::vector<double> x, y, z;
  Rng rng(13);
  for (int i = 0; i < 300; ++i) {
    const double v = rng.NextDouble();
    x.push_back(v);
    y.push_back(std::exp(3 * v));           // monotone, nonlinear
    z.push_back(rng.NextDouble());          // independent
  }
  EXPECT_GT(DependenceScore(x, y), 0.95);
  EXPECT_LT(DependenceScore(x, z), 0.2);
}

TEST(ClusteringTest, DependenceScoreHandlesTies) {
  std::vector<double> x = {1, 1, 1, 2, 2, 2, 3, 3, 3};
  std::vector<double> y = {1, 1, 1, 2, 2, 2, 3, 3, 3};
  EXPECT_GT(DependenceScore(x, y), 0.99);
  std::vector<double> c(9, 5.0);
  EXPECT_DOUBLE_EQ(DependenceScore(x, c), 0.0);
}

}  // namespace
}  // namespace cardbench
