// Model store behavior: content-addressed keys that track their inputs,
// cold build-then-persist vs warm load, corruption fallback to retraining,
// and the ModelBytes contract (serialized artifact size, growing with the
// data the model actually summarizes).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "cardest/model_store.h"
#include "cardest/registry.h"
#include "common/logging.h"
#include "cardest/sampling_est.h"
#include "datagen/stats_gen.h"
#include "exec/true_card.h"
#include "query/parser.h"

namespace cardbench {
namespace {

std::unique_ptr<Database> MakeDb(double scale) {
  StatsGenConfig config;
  config.scale = scale;
  return GenerateStatsDatabase(config);
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(ModelStoreKeyTest, DatasetFingerprintTracksData) {
  auto db_a = MakeDb(0.02);
  auto db_b = MakeDb(0.02);
  auto db_c = MakeDb(0.05);
  // Deterministic generation: identical inputs, identical fingerprint.
  EXPECT_EQ(ModelStore::DatasetFingerprint(*db_a),
            ModelStore::DatasetFingerprint(*db_b));
  // A different scale is a different dataset.
  EXPECT_NE(ModelStore::DatasetFingerprint(*db_a),
            ModelStore::DatasetFingerprint(*db_c));

  // Mutating data changes the fingerprint — stale artifacts cannot be
  // served for an updated database.
  const uint64_t before = ModelStore::DatasetFingerprint(*db_a);
  Table& tags = db_a->TableOrDie("tags");
  ASSERT_TRUE(
      tags.AppendRow({static_cast<Value>(tags.num_rows() + 1), 3, std::nullopt})
          .ok());
  EXPECT_NE(ModelStore::DatasetFingerprint(*db_a), before);
}

TEST(ModelStoreKeyTest, WorkloadFingerprintTracksLabels) {
  auto q = ParseSql("SELECT COUNT(*) FROM users WHERE users.Reputation >= 5;");
  ASSERT_TRUE(q.ok());
  std::vector<TrainingQuery> a = {{*q, 100.0}};
  std::vector<TrainingQuery> b = {{*q, 101.0}};
  EXPECT_EQ(ModelStore::WorkloadFingerprint(a),
            ModelStore::WorkloadFingerprint(a));
  EXPECT_NE(ModelStore::WorkloadFingerprint(a),
            ModelStore::WorkloadFingerprint(b));
  EXPECT_NE(ModelStore::WorkloadFingerprint(a),
            ModelStore::WorkloadFingerprint({}));
}

TEST(ModelStoreKeyTest, KeySeparatesNameConfigAndWorkload) {
  EstimatorConfig slow;
  EstimatorConfig fast;
  fast.fast = true;
  const std::string base = ModelStore::MakeKey("LW-NN", 7, slow, 0);
  // The estimator name survives sanitization into something path-safe.
  EXPECT_EQ(base.find("LW_NN-"), 0u) << base;
  EXPECT_NE(base, ModelStore::MakeKey("MSCN", 7, slow, 0));
  EXPECT_NE(base, ModelStore::MakeKey("LW-NN", 8, slow, 0));
  EXPECT_NE(base, ModelStore::MakeKey("LW-NN", 7, fast, 0));
  EXPECT_NE(base, ModelStore::MakeKey("LW-NN", 7, slow, 9));
}

double Probe(const Database& db, const CardinalityEstimator& est) {
  auto q = ParseSql(
      "SELECT COUNT(*) FROM users, badges WHERE users.Id = badges.UserId "
      "AND users.Reputation >= 50;");
  CARDBENCH_CHECK(q.ok(), "parse failed");
  (void)db;
  return est.EstimateCard(*q);
}

TEST(ModelStoreTest, ColdBuildsAndPersistsWarmLoads) {
  auto db = MakeDb(0.02);
  TrueCardService svc(*db);
  ModelStore store(FreshDir("cardbench_model_store_cold_warm"));
  EstimatorConfig config;
  config.fast = true;

  ModelStoreStats cold;
  auto built = MakeEstimator("MultiHist", *db, svc, nullptr, config, &store,
                             &cold);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_FALSE(cold.loaded);
  EXPECT_FALSE(cold.rebuilt_after_corruption);
  ASSERT_TRUE(std::filesystem::exists(cold.path)) << cold.path;

  ModelStoreStats warm;
  auto loaded = MakeEstimator("MultiHist", *db, svc, nullptr, config, &store,
                              &warm);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(warm.loaded);
  EXPECT_EQ(warm.path, cold.path);
  EXPECT_DOUBLE_EQ(Probe(*db, **loaded), Probe(*db, **built));
}

// Every way an artifact can rot on disk must be caught by the CBMD
// validation and answered by retraining + rewriting — never a mis-parse.
enum class Mutilation { kTruncate, kBadMagic, kVersionSkew, kFlipPayloadBit };

void Corrupt(const std::string& path, Mutilation how) {
  const auto size = std::filesystem::file_size(path);
  switch (how) {
    case Mutilation::kTruncate:
      std::filesystem::resize_file(path, size / 2);
      return;
    case Mutilation::kBadMagic: {
      std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
      f.seekp(0);
      f.put('X');  // magic becomes "XBMD"
      return;
    }
    case Mutilation::kVersionSkew: {
      std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
      f.seekp(4);  // u32 format version follows the magic
      f.put('\x7f');
      return;
    }
    case Mutilation::kFlipPayloadBit: {
      std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
      f.seekg(static_cast<std::streamoff>(size) - 1);
      const char last = static_cast<char>(f.get());
      f.seekp(static_cast<std::streamoff>(size) - 1);
      f.put(static_cast<char>(last ^ 0x01));  // checksum mismatch
      return;
    }
  }
}

class ModelStoreCorruptionTest : public ::testing::TestWithParam<Mutilation> {};

TEST_P(ModelStoreCorruptionTest, FallsBackToRetrainAndRewrites) {
  auto db = MakeDb(0.02);
  TrueCardService svc(*db);
  ModelStore store(FreshDir(
      "cardbench_model_store_corrupt_" +
      std::to_string(static_cast<int>(GetParam()))));
  EstimatorConfig config;
  config.fast = true;

  ModelStoreStats cold;
  auto built =
      MakeEstimator("MultiHist", *db, svc, nullptr, config, &store, &cold);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const double want = Probe(*db, **built);

  Corrupt(cold.path, GetParam());

  ModelStoreStats rebuilt;
  auto recovered =
      MakeEstimator("MultiHist", *db, svc, nullptr, config, &store, &rebuilt);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(rebuilt.loaded);
  EXPECT_TRUE(rebuilt.rebuilt_after_corruption);
  EXPECT_DOUBLE_EQ(Probe(*db, **recovered), want);

  // The rewritten artifact is intact again: the next construction loads.
  ModelStoreStats warm;
  auto loaded =
      MakeEstimator("MultiHist", *db, svc, nullptr, config, &store, &warm);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(warm.loaded);
  EXPECT_FALSE(warm.rebuilt_after_corruption);
  EXPECT_DOUBLE_EQ(Probe(*db, **loaded), want);
}

INSTANTIATE_TEST_SUITE_P(AllMutilations, ModelStoreCorruptionTest,
                         ::testing::Values(Mutilation::kTruncate,
                                           Mutilation::kBadMagic,
                                           Mutilation::kVersionSkew,
                                           Mutilation::kFlipPayloadBit),
                         [](const auto& info) {
                           switch (info.param) {
                             case Mutilation::kTruncate: return "Truncate";
                             case Mutilation::kBadMagic: return "BadMagic";
                             case Mutilation::kVersionSkew: return "VersionSkew";
                             case Mutilation::kFlipPayloadBit:
                               return "FlipPayloadBit";
                           }
                           return "Unknown";
                         });

TEST(ModelStoreTest, UnsupportedModelIsServedButNeverPersisted) {
  auto db = MakeDb(0.02);
  TrueCardService svc(*db);
  ModelStore store(FreshDir("cardbench_model_store_unsupported"));

  // TrueCard never enters the store through MakeEstimator; the bypass means
  // no artifact appears and no load is attempted.
  ModelStoreStats stats;
  auto oracle = MakeEstimator("TrueCard", *db, svc, nullptr, EstimatorConfig(),
                              &store, &stats);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  EXPECT_FALSE(stats.loaded);
  EXPECT_TRUE(stats.path.empty());
  EXPECT_FALSE(std::filesystem::exists(store.dir()) &&
               !std::filesystem::is_empty(store.dir()));
}

// Satellite check for the ModelBytes contract: PessEst used to report
// sizeof(*this); the serialized size must instead track the top-value
// sketches, which grow with the data.
TEST(ModelBytesTest, PessEstSketchSizeGrowsWithScale) {
  auto small_db = MakeDb(0.02);
  auto large_db = MakeDb(0.1);
  PessEstEstimator small_est(*small_db);
  PessEstEstimator large_est(*large_db);
  EXPECT_GT(small_est.ModelBytes(), sizeof(PessEstEstimator));
  EXPECT_GT(large_est.ModelBytes(), small_est.ModelBytes());
}

}  // namespace
}  // namespace cardbench
