// Physical-operator selection behaviour of the optimizer: access-path
// choice, operator niches under controlled cardinality injections, and
// the estimate-driven operator flips the paper's case study relies on.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "datagen/stats_gen.h"
#include "exec/true_card.h"
#include "optimizer/optimizer.h"
#include "query/parser.h"

namespace cardbench {
namespace {

/// Estimator returning per-table-count-keyed constants.
class ScriptedEstimator : public CardinalityEstimator {
 public:
  /// cards[k] is returned for sub-plans with k tables (1-based).
  explicit ScriptedEstimator(std::vector<double> cards_by_size)
      : cards_(std::move(cards_by_size)) {}
  std::string name() const override { return "Scripted"; }
  double EstimateCard(const Query& subquery) const override {
    const size_t k = subquery.tables.size();
    return k <= cards_.size() ? cards_[k - 1] : cards_.back();
  }

 private:
  std::vector<double> cards_;
};

class OptimizerPhysicalTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StatsGenConfig config;
    config.scale = 0.05;
    db_ = GenerateStatsDatabase(config).release();
  }
  static void TearDownTestSuite() { delete db_; }

  static Query Parse(const std::string& sql) {
    auto q = ParseSql(sql);
    EXPECT_TRUE(q.ok());
    return *q;
  }

  static Database* db_;
};

Database* OptimizerPhysicalTest::db_ = nullptr;

TEST_F(OptimizerPhysicalTest, IndexScanChosenForKeyEquality) {
  // Equality on an indexed key column with a sane selectivity estimate
  // must pick the index path; a plain range scan must not.
  Optimizer opt(*db_);
  ScriptedEstimator tiny({1.0});
  const Query by_key = Parse("SELECT COUNT(*) FROM posts WHERE posts.Id = 5;");
  auto plan = opt.Plan(by_key, tiny);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->plan->scan_method, ScanMethod::kIndexScan);

  const Query by_range =
      Parse("SELECT COUNT(*) FROM posts WHERE posts.Score >= 5;");
  auto range_plan = opt.Plan(by_range, tiny);
  ASSERT_TRUE(range_plan.ok());
  EXPECT_EQ(range_plan->plan->scan_method, ScanMethod::kSeqScan);
}

TEST_F(OptimizerPhysicalTest, TinyOuterPrefersIndexNestedLoop) {
  // One estimated outer row probing a big inner: INL beats building a hash
  // table over the whole inner.
  Optimizer opt(*db_);
  const Query q = Parse(
      "SELECT COUNT(*) FROM users, comments WHERE users.Id = "
      "comments.UserId AND users.Reputation >= 100000;");
  ScriptedEstimator script({1.0, 2.0});
  auto plan = opt.Plan(q, script);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->plan->join_method, JoinMethod::kIndexNestLoop)
      << plan->plan->Explain();
}

void CollectJoinMethods(const PlanNode& node, std::set<JoinMethod>* out) {
  if (node.IsScan()) return;
  out->insert(node.join_method);
  CollectJoinMethods(*node.left, out);
  CollectJoinMethods(*node.right, out);
}

TEST_F(OptimizerPhysicalTest, EstimatesSteerJoinOrder) {
  // The primary estimate-driven decision in an in-memory engine: the join
  // order. Feeding the optimizer inverted intermediate sizes must change
  // the plan shape (which leaves join first).
  Optimizer opt(*db_);
  const Query q = Parse(
      "SELECT COUNT(*) FROM users, badges, posts, comments WHERE users.Id = "
      "badges.UserId AND users.Id = posts.OwnerUserId AND posts.Id = "
      "comments.PostId;");
  // "badges first is cheap" vs "comments first is cheap" scripts.
  class PairBiased : public CardinalityEstimator {
   public:
    explicit PairBiased(std::string cheap_table)
        : cheap_(std::move(cheap_table)) {}
    std::string name() const override { return "PairBiased"; }
    double EstimateCard(const Query& subquery) const override {
      double base = 1000.0 * std::pow(10.0, static_cast<double>(
                                                subquery.tables.size()));
      for (const auto& t : subquery.tables) {
        if (t == cheap_ && subquery.tables.size() > 1) base /= 1e3;
      }
      return base;
    }

   private:
    std::string cheap_;
  };
  PairBiased badges_cheap("badges");
  PairBiased comments_cheap("comments");
  auto plan_a = opt.Plan(q, badges_cheap);
  auto plan_b = opt.Plan(q, comments_cheap);
  ASSERT_TRUE(plan_a.ok() && plan_b.ok());
  EXPECT_NE(plan_a->plan->Explain(), plan_b->plan->Explain());
}

TEST_F(OptimizerPhysicalTest, SystematicEstimateErrorFlipsOperatorChoice) {
  // The paper's O13 in miniature: the same query planned under systematic
  // under- vs over-estimation of its sub-plans uses different physical
  // operators. (A root-only injection is inert in this cost model — the
  // final output is emitted at the same per-tuple cost by every join
  // algorithm — so the flip is driven by the input estimates, which is
  // also what the correlated estimation errors of real methods perturb.)
  Optimizer opt(*db_);
  const Query q = Parse(
      "SELECT COUNT(*) FROM users, badges, posts, comments WHERE users.Id = "
      "badges.UserId AND users.Id = posts.OwnerUserId AND posts.Id = "
      "comments.PostId;");
  TrueCardService svc(*db_);

  class Scaled : public CardinalityEstimator {
   public:
    Scaled(TrueCardService& svc, double factor) : svc_(svc), factor_(factor) {}
    std::string name() const override { return "Scaled"; }
    double EstimateCard(const Query& subquery) const override {
      auto card = svc_.Card(subquery);
      return (card.ok() ? *card : 1.0) * factor_;
    }

   private:
    TrueCardService& svc_;
    double factor_;
  };

  Scaled under(svc, 1e-3);
  Scaled over(svc, 1e5);
  auto under_plan = opt.Plan(q, under);
  auto over_plan = opt.Plan(q, over);
  ASSERT_TRUE(under_plan.ok() && over_plan.ok());
  // Systematic error changes the chosen plan (order and/or operators).
  EXPECT_NE(under_plan->plan->Explain(), over_plan->plan->Explain());
}

}  // namespace
}  // namespace cardbench
