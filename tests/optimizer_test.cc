#include <gtest/gtest.h>

#include "datagen/stats_gen.h"
#include "exec/executor.h"
#include "exec/true_card.h"
#include "optimizer/optimizer.h"
#include "query/parser.h"

namespace cardbench {
namespace {

/// Oracle estimator: answers every sub-plan query with its exact
/// cardinality (the paper's TrueCard baseline).
class PerfectEstimator : public CardinalityEstimator {
 public:
  explicit PerfectEstimator(TrueCardService& svc) : svc_(svc) {}
  std::string name() const override { return "TrueCard"; }
  double EstimateCard(const Query& subquery) const override {
    auto card = svc_.Card(subquery);
    return card.ok() ? *card : 1.0;
  }

 private:
  TrueCardService& svc_;
};

/// Pathological estimator: a constant answer for everything.
class ConstEstimator : public CardinalityEstimator {
 public:
  explicit ConstEstimator(double value) : value_(value) {}
  std::string name() const override { return "Const"; }
  double EstimateCard(const Query&) const override { return value_; }

 private:
  double value_;
};

class OptimizerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StatsGenConfig config;
    config.scale = 0.05;
    db_ = GenerateStatsDatabase(config).release();
    svc_ = new TrueCardService(*db_);
  }
  static void TearDownTestSuite() {
    delete svc_;
    delete db_;
  }

  static Query Parse(const std::string& sql) {
    auto q = ParseSql(sql);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  static Database* db_;
  static TrueCardService* svc_;
};

Database* OptimizerTest::db_ = nullptr;
TrueCardService* OptimizerTest::svc_ = nullptr;

const char* kFourWayQuery =
    "SELECT COUNT(*) FROM users, posts, comments, badges WHERE "
    "users.Id = posts.OwnerUserId AND posts.Id = comments.PostId AND "
    "users.Id = badges.UserId AND posts.Score >= 5 AND users.Reputation >= 30;";

TEST_F(OptimizerTest, PlanCoversAllTables) {
  const Query q = Parse(kFourWayQuery);
  Optimizer opt(*db_);
  PerfectEstimator est(*svc_);
  auto result = opt.Plan(q, est);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->plan->NumTables(), 4u);
  EXPECT_EQ(result->plan->table_mask, q.FullMask());
}

TEST_F(OptimizerTest, EstimatesEveryConnectedSubplan) {
  const Query q = Parse(kFourWayQuery);
  Optimizer opt(*db_);
  PerfectEstimator est(*svc_);
  auto result = opt.Plan(q, est);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_estimates, EnumerateConnectedSubsets(q).size());
  EXPECT_EQ(result->injected_cards.size(), result->num_estimates);
  EXPECT_GE(result->planning_seconds, result->estimation_seconds);
}

TEST_F(OptimizerTest, AnyPlanShapeComputesTheSameCount) {
  // Plans from wildly different estimators must all produce the true count:
  // estimation quality affects speed, never correctness.
  const Query q = Parse(kFourWayQuery);
  Optimizer opt(*db_);
  TrueCardService reference(*db_);
  auto expected = reference.Card(q);
  ASSERT_TRUE(expected.ok());

  Executor exec(*db_);
  for (double v : {1.0, 1000.0, 1e9}) {
    ConstEstimator est(v);
    auto result = opt.Plan(q, est);
    ASSERT_TRUE(result.ok());
    auto count = exec.ExecuteCount(*result->plan);
    ASSERT_TRUE(count.ok());
    ASSERT_FALSE(count->timed_out);
    EXPECT_DOUBLE_EQ(static_cast<double>(count->count), *expected)
        << "const estimate " << v << " produced plan:\n"
        << result->plan->Explain();
  }
  PerfectEstimator perfect(*svc_);
  auto result = opt.Plan(q, perfect);
  ASSERT_TRUE(result.ok());
  auto count = exec.ExecuteCount(*result->plan);
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(static_cast<double>(count->count), *expected);
}

TEST_F(OptimizerTest, RecostWithOwnCardsReproducesPlanCost) {
  const Query q = Parse(kFourWayQuery);
  Optimizer opt(*db_);
  PerfectEstimator est(*svc_);
  auto result = opt.Plan(q, est);
  ASSERT_TRUE(result.ok());
  const double recost =
      opt.RecostWithCards(*result->plan, result->injected_cards);
  EXPECT_NEAR(recost, result->plan->estimated_cost,
              1e-6 * result->plan->estimated_cost);
}

TEST_F(OptimizerTest, TruePlanIsNoWorseUnderTrueCost) {
  // P-Error >= 1 by construction: the plan picked with true cardinalities
  // must cost no more than plans picked with wrong cardinalities when both
  // are costed under true cardinalities.
  const Query q = Parse(kFourWayQuery);
  Optimizer opt(*db_);
  auto true_cards = svc_->AllSubplanCards(q);
  ASSERT_TRUE(true_cards.ok());

  PerfectEstimator perfect(*svc_);
  auto true_plan = opt.Plan(q, perfect);
  ASSERT_TRUE(true_plan.ok());
  const double best_cost =
      opt.RecostWithCards(*true_plan->plan, *true_cards);

  for (double v : {1.0, 1e6}) {
    ConstEstimator bad(v);
    auto bad_plan = opt.Plan(q, bad);
    ASSERT_TRUE(bad_plan.ok());
    const double bad_cost = opt.RecostWithCards(*bad_plan->plan, *true_cards);
    EXPECT_GE(bad_cost, best_cost * (1 - 1e-9));
  }
}

TEST_F(OptimizerTest, SingleTablePlansAreScans) {
  const Query q =
      Parse("SELECT COUNT(*) FROM users WHERE users.Reputation >= 100;");
  Optimizer opt(*db_);
  PerfectEstimator est(*svc_);
  auto result = opt.Plan(q, est);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->plan->IsScan());
  EXPECT_EQ(result->plan->scan_method, ScanMethod::kSeqScan);
}

TEST_F(OptimizerTest, EstimateMagnitudeChangesThePlan) {
  // Cardinality estimates steer the physical plan (paper O6): with the
  // in-memory-calibrated cost model the choice that flips between tiny and
  // huge constant estimates is the probe direction / join shape, visible
  // in the EXPLAIN text.
  const Query q = Parse(
      "SELECT COUNT(*) FROM posts, comments WHERE posts.Id = "
      "comments.PostId;");
  Optimizer opt(*db_);
  ConstEstimator tiny(2.0);
  ConstEstimator huge(5e7);
  auto small_plan = opt.Plan(q, tiny);
  auto big_plan = opt.Plan(q, huge);
  ASSERT_TRUE(small_plan.ok());
  ASSERT_TRUE(big_plan.ok());
  EXPECT_NE(small_plan->plan->Explain(), big_plan->plan->Explain());
}

TEST_F(OptimizerTest, ExplainMentionsMethodsAndTables) {
  const Query q = Parse(kFourWayQuery);
  Optimizer opt(*db_);
  PerfectEstimator est(*svc_);
  auto result = opt.Plan(q, est);
  ASSERT_TRUE(result.ok());
  const std::string text = result->plan->Explain();
  EXPECT_NE(text.find("users"), std::string::npos);
  EXPECT_NE(text.find("Join"), std::string::npos);
  EXPECT_NE(text.find("rows="), std::string::npos);
}

}  // namespace
}  // namespace cardbench
