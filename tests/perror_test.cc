#include <gtest/gtest.h>

#include "cardest/postgres_est.h"
#include "cardest/truecard_est.h"
#include "datagen/stats_gen.h"
#include "exec/true_card.h"
#include "metrics/perror.h"
#include "query/parser.h"

namespace cardbench {
namespace {

class PErrorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StatsGenConfig config;
    config.scale = 0.05;
    db_ = GenerateStatsDatabase(config).release();
    truecard_ = new TrueCardService(*db_);
    optimizer_ = new Optimizer(*db_);
  }
  static void TearDownTestSuite() {
    delete optimizer_;
    delete truecard_;
    delete db_;
  }

  static Query FourWay() {
    return *ParseSql(
        "SELECT COUNT(*) FROM users, posts, comments, badges WHERE users.Id "
        "= posts.OwnerUserId AND posts.Id = comments.PostId AND users.Id = "
        "badges.UserId AND posts.Score >= 5;");
  }

  static Database* db_;
  static TrueCardService* truecard_;
  static Optimizer* optimizer_;
};

Database* PErrorTest::db_ = nullptr;
TrueCardService* PErrorTest::truecard_ = nullptr;
Optimizer* PErrorTest::optimizer_ = nullptr;

TEST_F(PErrorTest, OracleScoresExactlyOne) {
  const Query q = FourWay();
  auto cards = truecard_->AllSubplanCards(q);
  ASSERT_TRUE(cards.ok());
  PErrorCalculator calc(*optimizer_, q, *cards);
  EXPECT_GT(calc.true_plan_cost(), 0.0);

  TrueCardEstimator oracle(*truecard_);
  auto p_error = calc.Evaluate(oracle);
  ASSERT_TRUE(p_error.ok());
  EXPECT_NEAR(*p_error, 1.0, 1e-9);
}

TEST_F(PErrorTest, RealEstimatorNeverBeatsTheOraclePlan) {
  const Query q = FourWay();
  auto cards = truecard_->AllSubplanCards(q);
  ASSERT_TRUE(cards.ok());
  PErrorCalculator calc(*optimizer_, q, *cards);

  PostgresEstimator pg(*db_);
  auto p_error = calc.Evaluate(pg);
  ASSERT_TRUE(p_error.ok());
  // With a self-consistent cost model the oracle plan is optimal, so every
  // other plan recosts at >= 1.
  EXPECT_GE(*p_error, 1.0 - 1e-9);
}

TEST_F(PErrorTest, WorsePlansScoreHigher) {
  // A constant estimator that inverts the size ordering of sub-plans
  // produces a plan that cannot beat the oracle's.
  class InvertingEstimator : public CardinalityEstimator {
   public:
    explicit InvertingEstimator(
        const Query& q, const std::unordered_map<uint64_t, double>& cards)
        : query_(q), cards_(cards) {}
    std::string name() const override { return "inverting"; }
    double EstimateCard(const Query& subquery) const override {
      uint64_t mask = 0;
      for (const auto& t : subquery.tables) {
        mask |= uint64_t{1} << query_.TableIndex(t);
      }
      auto it = cards_.find(mask);
      const double truth = it == cards_.end() ? 1.0 : it->second;
      return 1e7 / std::max(truth, 1.0);  // big becomes small & vice versa
    }

   private:
    const Query& query_;
    const std::unordered_map<uint64_t, double>& cards_;
  };

  const Query q = FourWay();
  auto cards = truecard_->AllSubplanCards(q);
  ASSERT_TRUE(cards.ok());
  PErrorCalculator calc(*optimizer_, q, *cards);

  InvertingEstimator bad(q, *cards);
  auto bad_p = calc.Evaluate(bad);
  ASSERT_TRUE(bad_p.ok());

  PostgresEstimator pg(*db_);
  auto pg_p = calc.Evaluate(pg);
  ASSERT_TRUE(pg_p.ok());
  EXPECT_GE(*bad_p, *pg_p * 0.999);  // adversarial >= sane estimator
  EXPECT_GT(*bad_p, 1.0);
}

}  // namespace
}  // namespace cardbench
