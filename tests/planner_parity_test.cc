// Planner parity suite: the compiled QueryGraph path must be bit-identical
// to the legacy string-based path — same injected cardinalities, same
// EXPLAIN text, same plan cost, same P-Error — for every workload query
// under every estimator in the zoo. This is the refactor's contract: the IR
// changes how sub-plans are dispatched, never what any layer computes.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cardest/registry.h"
#include "harness/bench_env.h"
#include "metrics/perror.h"

namespace cardbench {
namespace {

BenchFlags ParityFlags() {
  BenchFlags flags;
  flags.fast = true;
  flags.scale = 0.05;
  flags.max_queries = 8;
  flags.exec_timeout = 10.0;
  flags.cache_dir = ::testing::TempDir() + "/cardbench_parity_cache";
  flags.training_queries = 100;
  return flags;
}

class PlannerParityTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    if (env_ != nullptr) return;
    auto env = BenchEnv::Create(BenchDataset::kStats, ParityFlags());
    ASSERT_TRUE(env.ok()) << env.status().ToString();
    env_ = env->release();
  }

  static BenchEnv* env_;
};

BenchEnv* PlannerParityTest::env_ = nullptr;

TEST_P(PlannerParityTest, GraphPathIsBitIdenticalToLegacy) {
  auto est = env_->MakeNamedEstimator(GetParam());
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  const CardinalityEstimator& estimator = **est;
  const Optimizer& opt = env_->optimizer();

  for (const auto& ctx : env_->query_contexts()) {
    auto legacy = opt.PlanLegacy(*ctx.query, estimator);
    auto graph = opt.Plan(*ctx.graph, estimator);
    ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();

    // Same estimates, injected for the same sub-plan masks, bit-for-bit.
    EXPECT_EQ(graph->num_estimates, legacy->num_estimates);
    ASSERT_EQ(graph->injected_cards.size(), legacy->injected_cards.size());
    for (const auto& [mask, card] : legacy->injected_cards) {
      auto it = graph->injected_cards.find(mask);
      ASSERT_NE(it, graph->injected_cards.end()) << "mask " << mask;
      EXPECT_EQ(it->second, card)
          << ctx.query->name << " mask " << mask << " under " << GetParam();
    }

    // Same chosen plan (shape, operators, row estimates) at the same cost.
    EXPECT_EQ(graph->plan->Explain(), legacy->plan->Explain())
        << ctx.query->name;
    EXPECT_EQ(graph->plan->estimated_cost, legacy->plan->estimated_cost);

    // Same P-Error, whether the calculator compiles its own graph or
    // borrows the harness's.
    PErrorCalculator borrowed(opt, *ctx.graph, ctx.true_cards);
    PErrorCalculator compiled(opt, *ctx.query, ctx.true_cards);
    EXPECT_EQ(borrowed.true_plan_cost(), compiled.true_plan_cost());
    EXPECT_EQ(borrowed.EvaluatePlan(*graph->plan),
              compiled.EvaluatePlan(*legacy->plan))
        << ctx.query->name;

    // Recosting either plan under true cardinalities agrees (PPC of the
    // P-Error numerator).
    EXPECT_EQ(opt.RecostWithCards(*graph->plan, ctx.true_cards),
              opt.RecostWithCards(*legacy->plan, ctx.true_cards));
  }
}

INSTANTIATE_TEST_SUITE_P(AllEstimators, PlannerParityTest,
                         ::testing::ValuesIn(AllEstimatorNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace cardbench
