// Property-based sweeps over randomized queries: the executor agrees with
// a brute-force evaluator, every estimator-induced plan computes the exact
// count, and the fanout join method telescopes exactly on every schema
// relation. Parameterized over seeds/relations via TEST_P.

#include <gtest/gtest.h>

#include <functional>

#include "cardest/bayescard_est.h"
#include "cardest/registry.h"
#include "datagen/stats_gen.h"
#include "exec/executor.h"
#include "exec/true_card.h"
#include "metrics/metrics.h"
#include "optimizer/optimizer.h"
#include "workload/workload_gen.h"

namespace cardbench {
namespace {

/// Exponential-time reference evaluator (tiny data only).
uint64_t BruteForceCount(const Database& db, const Query& q) {
  std::vector<const Table*> tables;
  for (const auto& name : q.tables) tables.push_back(db.FindTable(name));
  std::vector<size_t> rows(q.tables.size());
  uint64_t count = 0;
  std::function<void(size_t)> recurse = [&](size_t t) {
    if (t == q.tables.size()) {
      ++count;
      return;
    }
    const Table& table = *tables[t];
    for (size_t row = 0; row < table.num_rows(); ++row) {
      bool pass = true;
      for (const auto& pred : q.predicates) {
        if (pred.table != q.tables[t]) continue;
        const Column& col = table.ColumnByName(pred.column);
        if (!col.IsValid(row) ||
            !EvalCompare(col.Get(row), pred.op, pred.value)) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      rows[t] = row;
      for (const auto& edge : q.joins) {
        const size_t li = static_cast<size_t>(q.TableIndex(edge.left_table));
        const size_t ri = static_cast<size_t>(q.TableIndex(edge.right_table));
        if (std::max(li, ri) != t) continue;
        const Column& lcol = tables[li]->ColumnByName(edge.left_column);
        const Column& rcol = tables[ri]->ColumnByName(edge.right_column);
        if (!lcol.IsValid(rows[li]) || !rcol.IsValid(rows[ri]) ||
            lcol.Get(rows[li]) != rcol.Get(rows[ri])) {
          pass = false;
          break;
        }
      }
      if (pass) recurse(t + 1);
    }
  };
  recurse(0);
  return count;
}

class PropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static void SetUpTestSuite() {
    StatsGenConfig config;
    config.scale = 0.01;
    db_ = GenerateStatsDatabase(config).release();
    truecard_ = new TrueCardService(*db_);
  }
  static void TearDownTestSuite() {
    delete truecard_;
    delete db_;
  }
  static Database* db_;
  static TrueCardService* truecard_;
};

Database* PropertyTest::db_ = nullptr;
TrueCardService* PropertyTest::truecard_ = nullptr;

TEST_P(PropertyTest, ExecutorAgreesWithBruteForceOnRandomQueries) {
  Rng rng(GetParam());
  for (int i = 0; i < 6; ++i) {
    auto tmpl = RandomJoinTemplate(*db_, rng, 2 + rng.NextUint64(2), true);
    ASSERT_TRUE(tmpl.ok());
    Query q = std::move(*tmpl);
    AddRandomPredicates(*db_, rng, rng.NextUint64(4), q);
    auto card = truecard_->Card(q);
    ASSERT_TRUE(card.ok());
    EXPECT_EQ(static_cast<uint64_t>(*card), BruteForceCount(*db_, q))
        << q.ToSql();
  }
}

TEST_P(PropertyTest, EveryEstimatorPlanComputesTheExactCount) {
  // Estimates steer the plan shape; the answer must never change.
  Rng rng(GetParam() ^ 0xBEEF);
  Optimizer optimizer(*db_);
  Executor executor(*db_);
  EstimatorConfig fast;
  fast.fast = true;
  for (const char* name : {"PostgreSQL", "MultiHist", "UniSample", "WJSample",
                           "PessEst", "BayesCard", "DeepDB", "FLAT"}) {
    auto est = MakeEstimator(name, *db_, *truecard_, nullptr, fast);
    ASSERT_TRUE(est.ok()) << name;
    for (int i = 0; i < 3; ++i) {
      auto tmpl = RandomJoinTemplate(*db_, rng, 2 + rng.NextUint64(3), true);
      ASSERT_TRUE(tmpl.ok());
      Query q = std::move(*tmpl);
      AddRandomPredicates(*db_, rng, rng.NextUint64(5), q);
      auto truth = truecard_->Card(q);
      ASSERT_TRUE(truth.ok());
      auto plan = optimizer.Plan(q, **est);
      ASSERT_TRUE(plan.ok()) << name << ": " << q.ToSql();
      auto exec = executor.ExecuteCount(*plan->plan);
      ASSERT_TRUE(exec.ok());
      ASSERT_FALSE(exec->timed_out);
      EXPECT_DOUBLE_EQ(static_cast<double>(exec->count), *truth)
          << name << " on " << q.ToSql() << "\n"
          << plan->plan->Explain();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

/// The fanout method telescopes exactly on unfiltered PK-FK joins: sweep
/// every relation of the schema (Figure 1's 12 edges).
class FanoutExactnessTest : public ::testing::TestWithParam<size_t> {
 protected:
  static void SetUpTestSuite() {
    StatsGenConfig config;
    config.scale = 0.04;
    db_ = GenerateStatsDatabase(config).release();
    truecard_ = new TrueCardService(*db_);
    model_ = new BayesCardEstimator(*db_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete truecard_;
    delete db_;
  }
  static Database* db_;
  static TrueCardService* truecard_;
  static BayesCardEstimator* model_;
};

Database* FanoutExactnessTest::db_ = nullptr;
TrueCardService* FanoutExactnessTest::truecard_ = nullptr;
BayesCardEstimator* FanoutExactnessTest::model_ = nullptr;

TEST_P(FanoutExactnessTest, UnfilteredSchemaJoinIsNearExact) {
  const JoinRelation& rel = db_->join_relations().at(GetParam());
  Query q;
  q.tables = {rel.left_table, rel.right_table};
  q.joins = {{rel.left_table, rel.left_column, rel.right_table,
              rel.right_column}};
  auto truth = truecard_->Card(q);
  ASSERT_TRUE(truth.ok());
  const double estimate = model_->EstimateCard(q);
  // Laplace smoothing dominates relative error when the join is tiny.
  const double tolerance = *truth >= 50 ? 1.25 : 2.0;
  EXPECT_LT(QError(estimate, *truth), tolerance)
      << rel.ToString() << ": est " << estimate << " true " << *truth;
}

INSTANTIATE_TEST_SUITE_P(AllSchemaRelations, FanoutExactnessTest,
                         ::testing::Range<size_t>(0, 12));

}  // namespace
}  // namespace cardbench
