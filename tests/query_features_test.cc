#include <gtest/gtest.h>

#include "cardest/query_features.h"
#include "datagen/stats_gen.h"
#include "query/parser.h"

namespace cardbench {
namespace {

class QueryFeaturesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StatsGenConfig config;
    config.scale = 0.02;
    db_ = GenerateStatsDatabase(config).release();
    featurizer_ = new QueryFeaturizer(*db_);
  }
  static void TearDownTestSuite() {
    delete featurizer_;
    delete db_;
  }

  static Query Parse(const std::string& sql) {
    auto q = ParseSql(sql);
    EXPECT_TRUE(q.ok());
    return *q;
  }

  static Database* db_;
  static QueryFeaturizer* featurizer_;
};

Database* QueryFeaturesTest::db_ = nullptr;
QueryFeaturizer* QueryFeaturesTest::featurizer_ = nullptr;

TEST_F(QueryFeaturesTest, FlatDimensionsAreConsistent) {
  const Query q = Parse(
      "SELECT COUNT(*) FROM users, badges WHERE users.Id = badges.UserId AND "
      "users.Reputation >= 10;");
  const auto features = featurizer_->FlatFeatures(q);
  EXPECT_EQ(features.size(), featurizer_->flat_dim());
  // Different query, same dimensionality.
  const Query q2 = Parse("SELECT COUNT(*) FROM posts;");
  EXPECT_EQ(featurizer_->FlatFeatures(q2).size(), featurizer_->flat_dim());
}

TEST_F(QueryFeaturesTest, TableAndJoinOneHotsAreSet) {
  const Query q = Parse(
      "SELECT COUNT(*) FROM users, badges WHERE users.Id = badges.UserId;");
  const auto with_join = featurizer_->FlatFeatures(q);
  const Query single = Parse("SELECT COUNT(*) FROM users;");
  const auto without = featurizer_->FlatFeatures(single);
  double join_diff = 0;
  for (size_t i = 0; i < with_join.size(); ++i) {
    join_diff += std::abs(with_join[i] - without[i]);
  }
  EXPECT_GT(join_diff, 1.5);  // badges one-hot + join one-hot differ
}

TEST_F(QueryFeaturesTest, PredicateRangesAreNormalized) {
  const Query q = Parse(
      "SELECT COUNT(*) FROM users WHERE users.Reputation >= 10 AND "
      "users.Reputation <= 100;");
  const auto features = featurizer_->FlatFeatures(q);
  for (double v : features) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST_F(QueryFeaturesTest, MscnSetsHaveOneElementPerItem) {
  const Query q = Parse(
      "SELECT COUNT(*) FROM users, posts, comments WHERE users.Id = "
      "posts.OwnerUserId AND posts.Id = comments.PostId AND posts.Score >= 3 "
      "AND users.Views >= 1;");
  const auto sets = featurizer_->MscnFeatures(q);
  EXPECT_EQ(sets.tables.size(), 3u);
  EXPECT_EQ(sets.joins.size(), 2u);
  EXPECT_EQ(sets.predicates.size(), 2u);
  for (const auto& e : sets.tables) {
    EXPECT_EQ(e.size(), featurizer_->table_element_dim());
  }
  for (const auto& e : sets.joins) {
    EXPECT_EQ(e.size(), featurizer_->join_element_dim());
  }
  for (const auto& e : sets.predicates) {
    EXPECT_EQ(e.size(), featurizer_->predicate_element_dim());
  }
}

TEST_F(QueryFeaturesTest, EmptySetsGetZeroPlaceholder) {
  const Query q = Parse("SELECT COUNT(*) FROM users;");
  const auto sets = featurizer_->MscnFeatures(q);
  ASSERT_EQ(sets.joins.size(), 1u);
  ASSERT_EQ(sets.predicates.size(), 1u);
  for (double v : sets.joins[0]) EXPECT_DOUBLE_EQ(v, 0.0);
  for (double v : sets.predicates[0]) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST_F(QueryFeaturesTest, BitmapReactsToPredicateSelectivity) {
  // MSCN's signature feature: the per-table sample bitmap shrinks as the
  // predicates become more selective.
  const Query loose = Parse(
      "SELECT COUNT(*) FROM users WHERE users.Reputation >= 1;");
  const Query tight = Parse(
      "SELECT COUNT(*) FROM users WHERE users.Reputation >= 100000000;");
  auto count_bits = [&](const Query& q) {
    const auto sets = featurizer_->MscnFeatures(q);
    double bits = 0;
    for (double v : sets.tables[0]) bits += v;
    return bits;
  };
  EXPECT_GT(count_bits(loose), count_bits(tight));
  // The impossible predicate zeroes the whole bitmap (only the table
  // one-hot remains).
  EXPECT_LE(count_bits(tight), 1.0 + 1e-9);
}

}  // namespace
}  // namespace cardbench
