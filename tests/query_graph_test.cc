#include "query/query_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>

#include "common/str_util.h"
#include "datagen/stats_gen.h"
#include "query/parser.h"

namespace cardbench {
namespace {

class QueryGraphTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StatsGenConfig config;
    config.scale = 0.05;
    db_ = GenerateStatsDatabase(config).release();
  }
  static void TearDownTestSuite() { delete db_; }

  static Query Parse(const std::string& sql) {
    auto q = ParseSql(sql);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  static Database* db_;
};

Database* QueryGraphTest::db_ = nullptr;

const char* kFourWayQuery =
    "SELECT COUNT(*) FROM users, posts, comments, badges WHERE "
    "users.Id = posts.OwnerUserId AND posts.Id = comments.PostId AND "
    "users.Id = badges.UserId AND posts.Score >= 5 AND users.Reputation >= 30;";

TEST_F(QueryGraphTest, TableIdsAreDatabaseOrderColumnIdsResolve) {
  const Query q = Parse(kFourWayQuery);
  const QueryGraph graph(q, *db_);

  ASSERT_EQ(graph.num_tables(), q.tables.size());
  const auto& names = db_->table_names();
  for (size_t local = 0; local < graph.num_tables(); ++local) {
    const auto& info = graph.table(local);
    EXPECT_EQ(info.name, q.tables[local]);
    ASSERT_GE(info.table_id, 0);
    ASSERT_LT(static_cast<size_t>(info.table_id), names.size());
    EXPECT_EQ(names[info.table_id], info.name);
    EXPECT_EQ(info.table, db_->FindTable(info.name));
    ASSERT_EQ(info.preds.size(), info.pred_column_ids.size());
    for (size_t p = 0; p < info.preds.size(); ++p) {
      EXPECT_EQ(static_cast<size_t>(info.pred_column_ids[p]),
                info.table->ColumnIndexOrDie(info.preds[p].column));
    }
  }
  for (const auto& pred : graph.predicates()) {
    ASSERT_NE(pred.column, nullptr);
    EXPECT_EQ(static_cast<size_t>(pred.column_id),
              graph.table(pred.local_table)
                  .table->ColumnIndexOrDie(pred.pred.column));
  }
}

TEST_F(QueryGraphTest, EdgesAndAdjacencyAgree) {
  const Query q = Parse(kFourWayQuery);
  const QueryGraph graph(q, *db_);

  ASSERT_EQ(graph.edges().size(), q.joins.size());
  uint64_t from_edges = 0;
  for (const auto& edge : graph.edges()) {
    EXPECT_EQ(edge.mask, (uint64_t{1} << edge.left_local) |
                             (uint64_t{1} << edge.right_local));
    // Each endpoint's adjacency mask contains the opposite endpoint.
    EXPECT_TRUE(graph.table(edge.left_local).adjacency &
                (uint64_t{1} << edge.right_local));
    EXPECT_TRUE(graph.table(edge.right_local).adjacency &
                (uint64_t{1} << edge.left_local));
    // `canonical` is the endpoint-sorted "a.b=c.d" spelling; both
    // orientations of the original edge produce it.
    const std::string lhs =
        edge.edge->left_table + "." + edge.edge->left_column;
    const std::string rhs =
        edge.edge->right_table + "." + edge.edge->right_column;
    EXPECT_EQ(edge.canonical,
              lhs < rhs ? lhs + "=" + rhs : rhs + "=" + lhs);
    from_edges |= edge.mask;
  }
  EXPECT_EQ(from_edges, graph.full_mask());

  // AdjacencyOf(set) is the union of the members' adjacency masks, and a
  // split has a connecting edge iff the adjacency pre-check passes.
  for (uint64_t mask = 1; mask <= graph.full_mask(); ++mask) {
    uint64_t expect = 0;
    for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
      expect |= graph.table(std::countr_zero(rest)).adjacency;
    }
    EXPECT_EQ(graph.AdjacencyOf(mask), expect);
  }
}

TEST_F(QueryGraphTest, ConnectedSubsetsMatchLegacyEnumeration) {
  const Query q = Parse(kFourWayQuery);
  const QueryGraph graph(q, *db_);

  EXPECT_EQ(graph.connected_subsets(), EnumerateConnectedSubsets(q));
  for (uint64_t mask : graph.connected_subsets()) {
    EXPECT_TRUE(graph.IsConnected(mask));
  }
  // users(0) and comments(2) only touch through posts(1): dropping posts
  // disconnects them.
  EXPECT_FALSE(graph.IsConnected((uint64_t{1} << 0) | (uint64_t{1} << 2)));
}

TEST_F(QueryGraphTest, InducedSubplansAreByteIdenticalToLegacy) {
  const Query q = Parse(kFourWayQuery);
  const QueryGraph graph(q, *db_);

  for (uint64_t mask : graph.connected_subsets()) {
    const Query legacy = q.Induced(mask);
    EXPECT_EQ(graph.CanonicalKey(mask), legacy.CanonicalKey());
    EXPECT_EQ(graph.InducedRef(mask).CanonicalKey(), legacy.CanonicalKey());
    EXPECT_EQ(graph.InducedQuery(mask).CanonicalKey(), legacy.CanonicalKey());
  }
}

TEST_F(QueryGraphTest, FingerprintIsCanonicalKeyHash) {
  const Query q = Parse(kFourWayQuery);
  const QueryGraph graph(q, *db_);
  EXPECT_EQ(graph.fingerprint(), Fnv1aHash(q.CanonicalKey()));

  // Reordered FROM/WHERE clauses canonicalize identically, so graph and
  // graph-less service requests for the same logical query share cache
  // entries.
  const Query permuted = Parse(
      "SELECT COUNT(*) FROM badges, comments, posts, users WHERE "
      "users.Reputation >= 30 AND users.Id = badges.UserId AND "
      "posts.Id = comments.PostId AND posts.Score >= 5 AND "
      "users.Id = posts.OwnerUserId;");
  const QueryGraph permuted_graph(permuted, *db_);
  EXPECT_EQ(permuted_graph.fingerprint(), graph.fingerprint());

  const Query other =
      Parse("SELECT COUNT(*) FROM users WHERE users.Reputation >= 100;");
  const QueryGraph other_graph(other, *db_);
  EXPECT_NE(other_graph.fingerprint(), graph.fingerprint());
}

TEST_F(QueryGraphTest, PredGroupsSortedByColumnWithQueryOrderWithin) {
  const Query q = Parse(
      "SELECT COUNT(*) FROM posts WHERE posts.Score >= 5 AND "
      "posts.ViewCount <= 900 AND posts.Score <= 50;");
  const QueryGraph graph(q, *db_);

  const auto& info = graph.table(0);
  ASSERT_EQ(info.pred_groups.size(), 2u);
  EXPECT_TRUE(std::is_sorted(
      info.pred_groups.begin(), info.pred_groups.end(),
      [](const auto& a, const auto& b) { return a.column < b.column; }));
  const auto& score = *std::find_if(
      info.pred_groups.begin(), info.pred_groups.end(),
      [](const auto& g) { return g.column == "Score"; });
  ASSERT_EQ(score.preds.size(), 2u);
  EXPECT_EQ(score.preds[0].op, CompareOp::kGe);
  EXPECT_EQ(score.preds[1].op, CompareOp::kLe);
  EXPECT_EQ(static_cast<size_t>(score.column_id),
            info.table->ColumnIndexOrDie("Score"));
  EXPECT_EQ(info.compiled.size(), info.preds.size());
}

TEST_F(QueryGraphTest, SingleTableQueryHasTrivialGraph) {
  const Query q =
      Parse("SELECT COUNT(*) FROM users WHERE users.Reputation >= 100;");
  const QueryGraph graph(q, *db_);
  EXPECT_EQ(graph.num_tables(), 1u);
  EXPECT_EQ(graph.full_mask(), 1u);
  EXPECT_TRUE(graph.edges().empty());
  EXPECT_EQ(graph.table(0).adjacency, 0u);
  EXPECT_EQ(graph.connected_subsets(), std::vector<uint64_t>{1});
  EXPECT_TRUE(graph.IsConnected(1));
}

}  // namespace
}  // namespace cardbench
