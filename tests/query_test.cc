#include <gtest/gtest.h>

#include <bit>

#include "query/parser.h"
#include "query/query.h"

namespace cardbench {
namespace {

Query ThreeTableChain() {
  // a -(x)- b -(y)- c
  Query q;
  q.tables = {"a", "b", "c"};
  q.joins = {{"a", "x", "b", "x"}, {"b", "y", "c", "y"}};
  q.predicates = {{"a", "v", CompareOp::kGt, 5}, {"c", "w", CompareOp::kEq, 1}};
  return q;
}

TEST(QueryTest, TableIndex) {
  const Query q = ThreeTableChain();
  EXPECT_EQ(q.TableIndex("a"), 0);
  EXPECT_EQ(q.TableIndex("c"), 2);
  EXPECT_EQ(q.TableIndex("zzz"), -1);
}

TEST(QueryTest, ConnectivityOfChain) {
  const Query q = ThreeTableChain();
  EXPECT_TRUE(q.IsConnected(0b111));
  EXPECT_TRUE(q.IsConnected(0b011));  // a-b
  EXPECT_TRUE(q.IsConnected(0b110));  // b-c
  EXPECT_FALSE(q.IsConnected(0b101));  // a, c not adjacent
  EXPECT_TRUE(q.IsConnected(0b001));
  EXPECT_FALSE(q.IsConnected(0));
}

TEST(QueryTest, EnumerateConnectedSubsetsOfChain) {
  const Query q = ThreeTableChain();
  const auto subsets = EnumerateConnectedSubsets(q);
  // 3 singletons + {ab} + {bc} + {abc} = 6 (not {ac}).
  EXPECT_EQ(subsets.size(), 6u);
  // Popcount-ordered.
  EXPECT_EQ(std::popcount(subsets.front()), 1);
  EXPECT_EQ(subsets.back(), q.FullMask());
}

TEST(QueryTest, InducedSubqueryKeepsInsideEdgesAndPredicates) {
  const Query q = ThreeTableChain();
  const Query sub = q.Induced(0b011);  // {a, b}
  EXPECT_EQ(sub.tables.size(), 2u);
  ASSERT_EQ(sub.joins.size(), 1u);
  EXPECT_EQ(sub.joins[0].left_table, "a");
  ASSERT_EQ(sub.predicates.size(), 1u);
  EXPECT_EQ(sub.predicates[0].table, "a");
}

TEST(QueryTest, CanonicalKeyIsOrderInvariant) {
  Query q1 = ThreeTableChain();
  Query q2 = ThreeTableChain();
  std::swap(q2.tables[0], q2.tables[2]);
  std::swap(q2.predicates[0], q2.predicates[1]);
  std::swap(q2.joins[0], q2.joins[1]);
  EXPECT_EQ(q1.CanonicalKey(), q2.CanonicalKey());
}

TEST(QueryTest, CanonicalKeyDistinguishesPredicates) {
  Query q1 = ThreeTableChain();
  Query q2 = ThreeTableChain();
  q2.predicates[0].value = 6;
  EXPECT_NE(q1.CanonicalKey(), q2.CanonicalKey());
}

TEST(ParserTest, ParsesJoinQuery) {
  const auto result = ParseSql(
      "SELECT COUNT(*) FROM posts, comments WHERE posts.Id = comments.PostId "
      "AND posts.Score >= 3 AND comments.Score < 5;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Query& q = *result;
  EXPECT_EQ(q.tables.size(), 2u);
  ASSERT_EQ(q.joins.size(), 1u);
  EXPECT_EQ(q.joins[0].ToString(), "posts.Id = comments.PostId");
  ASSERT_EQ(q.predicates.size(), 2u);
  EXPECT_EQ(q.predicates[0].op, CompareOp::kGe);
  EXPECT_EQ(q.predicates[1].op, CompareOp::kLt);
  EXPECT_EQ(q.predicates[1].value, 5);
}

TEST(ParserTest, ParsesSingleTableNoWhere) {
  const auto result = ParseSql("SELECT COUNT(*) FROM users;");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tables.size(), 1u);
  EXPECT_TRUE(result->joins.empty());
  EXPECT_TRUE(result->predicates.empty());
}

TEST(ParserTest, ParsesNegativeLiteralsAndNeq) {
  const auto result = ParseSql(
      "SELECT COUNT(*) FROM posts WHERE posts.Score >= -2 AND "
      "posts.PostTypeId <> 3;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->predicates[0].value, -2);
  EXPECT_EQ(result->predicates[1].op, CompareOp::kNeq);
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  EXPECT_TRUE(ParseSql("select count ( * ) from users;").ok());
}

TEST(ParserTest, RejectsNonEquiJoin) {
  const auto result = ParseSql(
      "SELECT COUNT(*) FROM a, b WHERE a.x < b.y;");
  EXPECT_FALSE(result.ok());
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseSql("DELETE FROM users;").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM a WHERE a.x ==;").ok());
}

TEST(ParserTest, RoundTripThroughToSql) {
  const auto original = ParseSql(
      "SELECT COUNT(*) FROM posts, comments WHERE posts.Id = comments.PostId "
      "AND posts.Score >= 3;");
  ASSERT_TRUE(original.ok());
  const auto reparsed = ParseSql(original->ToSql());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(original->CanonicalKey(), reparsed->CanonicalKey());
}

TEST(ValueRangeTest, FoldsConjunctions) {
  ValueRange range;
  range.Apply(CompareOp::kGe, 3);
  range.Apply(CompareOp::kLt, 10);
  EXPECT_EQ(range.lo, 3);
  EXPECT_EQ(range.hi, 9);
  EXPECT_TRUE(range.Contains(3));
  EXPECT_TRUE(range.Contains(9));
  EXPECT_FALSE(range.Contains(10));
  range.Apply(CompareOp::kEq, 20);
  EXPECT_TRUE(range.Empty());
}

}  // namespace
}  // namespace cardbench
