#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "cardest/bayescard_est.h"
#include "cardest/binner.h"
#include "cardest/noisy_oracle_est.h"
#include "cardest/postgres_est.h"
#include "common/rng.h"
#include "datagen/stats_gen.h"
#include "exec/true_card.h"
#include "metrics/metrics.h"
#include "query/parser.h"

namespace cardbench {
namespace {

Column SkewedColumn(size_t n, uint64_t seed) {
  Rng rng(seed);
  Column col("c", ColumnKind::kNumeric);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBool(0.1)) {
      col.AppendNull();
    } else {
      col.Append(rng.NextZipf(200, 1.2));
    }
  }
  return col;
}

TEST(BinnerSerializationTest, RoundTripPreservesEverything) {
  const Column col = SkewedColumn(3000, 9);
  ColumnBinner original(col, 16);
  std::stringstream stream;
  original.Serialize(stream);
  auto restored = ColumnBinner::Deserialize(stream);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  ASSERT_EQ(restored->num_bins(), original.num_bins());
  for (uint16_t b = 0; b < original.num_bins(); ++b) {
    EXPECT_DOUBLE_EQ(restored->BinMass(b), original.BinMass(b));
    EXPECT_DOUBLE_EQ(restored->BinMean(b), original.BinMean(b));
    EXPECT_DOUBLE_EQ(restored->BinInverseMean(b), original.BinInverseMean(b));
  }
  // Selectivities and bin assignment agree on probe values.
  for (Value v : {0, 1, 5, 50, 199, 1000}) {
    EXPECT_EQ(restored->BinOf(v), original.BinOf(v)) << v;
    std::vector<Predicate> preds = {{"t", "c", CompareOp::kLe, v}};
    const auto a = original.PredicateFractions(preds);
    const auto b = restored->PredicateFractions(preds);
    for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}

TEST(BinnerSerializationTest, RejectsGarbage) {
  std::stringstream stream("not a binner at all");
  EXPECT_FALSE(ColumnBinner::Deserialize(stream).ok());
}

TEST(PostgresModelSerializationTest, LoadedModelEstimatesIdentically) {
  StatsGenConfig config;
  config.scale = 0.03;
  auto db = GenerateStatsDatabase(config);
  PostgresEstimator original(*db);
  const std::string path =
      ::testing::TempDir() + "/pg_model_test.stats";
  ASSERT_TRUE(original.SaveModel(path).ok());

  auto loaded = PostgresEstimator::LoadModel(*db, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  for (const char* sql : {
           "SELECT COUNT(*) FROM users WHERE users.Reputation >= 100;",
           "SELECT COUNT(*) FROM posts WHERE posts.PostTypeId = 1 AND "
           "posts.Score >= 3;",
           "SELECT COUNT(*) FROM users, badges WHERE users.Id = "
           "badges.UserId AND badges.Date >= 1000;",
       }) {
    auto q = ParseSql(sql);
    ASSERT_TRUE(q.ok());
    EXPECT_DOUBLE_EQ((*loaded)->EstimateCard(*q), original.EstimateCard(*q))
        << sql;
  }
  std::filesystem::remove(path);
}

TEST(PostgresModelSerializationTest, LoadFromMissingFileFails) {
  StatsGenConfig config;
  config.scale = 0.02;
  auto db = GenerateStatsDatabase(config);
  EXPECT_FALSE(PostgresEstimator::LoadModel(*db, "/nonexistent/model").ok());
}

TEST(BayesCardSerializationTest, LoadedModelEstimatesIdentically) {
  StatsGenConfig config;
  config.scale = 0.04;
  auto db = GenerateStatsDatabase(config);
  BayesCardEstimator original(*db);
  const std::string path = ::testing::TempDir() + "/bayescard_model.bn";
  ASSERT_TRUE(original.SaveModel(path).ok());

  auto loaded = BayesCardEstimator::LoadModel(*db, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  for (const char* sql : {
           "SELECT COUNT(*) FROM users WHERE users.Reputation >= 50;",
           "SELECT COUNT(*) FROM users, badges WHERE users.Id = "
           "badges.UserId AND users.Views >= 3;",
           "SELECT COUNT(*) FROM users, posts, comments WHERE users.Id = "
           "posts.OwnerUserId AND posts.Id = comments.PostId AND posts.Score "
           ">= 4;",
           "SELECT COUNT(*) FROM comments, badges WHERE comments.UserId = "
           "badges.UserId;",
       }) {
    auto q = ParseSql(sql);
    ASSERT_TRUE(q.ok());
    EXPECT_DOUBLE_EQ((*loaded)->EstimateCard(*q), original.EstimateCard(*q))
        << sql;
  }
  std::filesystem::remove(path);
}

TEST(BayesCardSerializationTest, LoadedModelStillUpdates) {
  // The deserialized model (no row bins in memory) must survive the
  // incremental-update path: bins are recomputed lazily on Update().
  StatsGenConfig config;
  config.scale = 0.04;
  auto db = GenerateStatsDatabase(config);
  BayesCardEstimator original(*db);
  const std::string path = ::testing::TempDir() + "/bayescard_model2.bn";
  ASSERT_TRUE(original.SaveModel(path).ok());
  auto loaded = BayesCardEstimator::LoadModel(*db, path);
  ASSERT_TRUE(loaded.ok());

  Table& tags = db->TableOrDie("tags");
  const size_t before = tags.num_rows();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        tags.AppendRow({static_cast<Value>(before + 1 + i), 77, std::nullopt})
            .ok());
  }
  ASSERT_TRUE((*loaded)->Update().ok());
  Query q;
  q.tables = {"tags"};
  // The updated estimate tracks the new row count.
  EXPECT_NEAR((*loaded)->EstimateCard(q), static_cast<double>(before + 20),
              (before + 20) * 0.05);
  std::filesystem::remove(path);
}

TEST(NoisyOracleTest, SigmaZeroIsExactAndDeterministic) {
  StatsGenConfig config;
  config.scale = 0.02;
  auto db = GenerateStatsDatabase(config);
  TrueCardService svc(*db);
  NoisyOracleEstimator exact(svc, 0.0);
  auto q = ParseSql("SELECT COUNT(*) FROM users WHERE users.Reputation >= 5;");
  ASSERT_TRUE(q.ok());
  const double truth = *svc.Card(*q);
  EXPECT_DOUBLE_EQ(exact.EstimateCard(*q), std::max(1.0, truth));

  // Same sub-plan, same perturbation — across calls and instances.
  NoisyOracleEstimator noisy_a(svc, 2.0);
  NoisyOracleEstimator noisy_b(svc, 2.0);
  const double first = noisy_a.EstimateCard(*q);
  EXPECT_DOUBLE_EQ(noisy_a.EstimateCard(*q), first);
  EXPECT_DOUBLE_EQ(noisy_b.EstimateCard(*q), first);
}

TEST(NoisyOracleTest, ErrorMagnitudeTracksSigma) {
  StatsGenConfig config;
  config.scale = 0.03;
  auto db = GenerateStatsDatabase(config);
  TrueCardService svc(*db);
  NoisyOracleEstimator mild(svc, 0.5);
  NoisyOracleEstimator wild(svc, 4.0);

  Rng rng(3);
  double mild_err = 0, wild_err = 0;
  size_t n = 0;
  for (const auto& table : db->table_names()) {
    Query q;
    q.tables = {table};
    const double truth = *svc.Card(q);
    mild_err += QError(mild.EstimateCard(q), truth);
    wild_err += QError(wild.EstimateCard(q), truth);
    ++n;
  }
  EXPECT_GT(wild_err / static_cast<double>(n),
            mild_err / static_cast<double>(n));
}

}  // namespace
}  // namespace cardbench
