// Estimator lifecycle suite: every Table-3 method must round-trip through
// the CBMD artifact format and the model store — train, serialize, reload,
// and produce bit-identical injected cardinalities, EXPLAIN output and
// P-Error on every workload query. Mutilated artifacts (truncation, bad
// magic, checksum flips, version skew) must be rejected and fall back to
// retraining, never mis-parse.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>

#include "cardest/bayescard_est.h"
#include "cardest/binner.h"
#include "cardest/model_store.h"
#include "cardest/noisy_oracle_est.h"
#include "cardest/postgres_est.h"
#include "cardest/registry.h"
#include "common/rng.h"
#include "common/serde.h"
#include "datagen/stats_gen.h"
#include "exec/true_card.h"
#include "harness/bench_env.h"
#include "metrics/metrics.h"
#include "query/parser.h"

namespace cardbench {
namespace {

Column SkewedColumn(size_t n, uint64_t seed) {
  Rng rng(seed);
  Column col("c", ColumnKind::kNumeric);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBool(0.1)) {
      col.AppendNull();
    } else {
      col.Append(rng.NextZipf(200, 1.2));
    }
  }
  return col;
}

TEST(BinnerSerializationTest, RoundTripPreservesEverything) {
  const Column col = SkewedColumn(3000, 9);
  ColumnBinner original(col, 16);
  SectionWriter out;
  original.Serialize(out);
  SectionReader in(out.bytes());
  auto restored = ColumnBinner::Deserialize(in);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  ASSERT_EQ(restored->num_bins(), original.num_bins());
  for (uint16_t b = 0; b < original.num_bins(); ++b) {
    EXPECT_DOUBLE_EQ(restored->BinMass(b), original.BinMass(b));
    EXPECT_DOUBLE_EQ(restored->BinMean(b), original.BinMean(b));
    EXPECT_DOUBLE_EQ(restored->BinInverseMean(b), original.BinInverseMean(b));
  }
  // Selectivities and bin assignment agree on probe values.
  for (Value v : {0, 1, 5, 50, 199, 1000}) {
    EXPECT_EQ(restored->BinOf(v), original.BinOf(v)) << v;
    std::vector<Predicate> preds = {{"t", "c", CompareOp::kLe, v}};
    const auto a = original.PredicateFractions(preds);
    const auto b = restored->PredicateFractions(preds);
    for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}

TEST(BinnerSerializationTest, RejectsGarbage) {
  SectionReader in("not a binner at all");
  EXPECT_FALSE(ColumnBinner::Deserialize(in).ok());
}

TEST(SerdeFormatTest, RoundTripAndTagCheck) {
  ModelWriter writer("demo");
  SectionWriter& s = writer.AddSection("payload");
  s.PutU64(42);
  s.PutString("hello");
  s.PutDoubles({1.5, -2.25});
  std::stringstream stream;
  ASSERT_TRUE(writer.WriteTo(stream).ok());

  auto reader = ModelReader::Open(stream, "demo");
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto section = reader->Section("payload");
  ASSERT_TRUE(section.ok());
  EXPECT_EQ(*section->GetU64(), 42u);
  EXPECT_EQ(*section->GetString(), "hello");
  EXPECT_EQ(*section->GetDoubles(), (std::vector<double>{1.5, -2.25}));
  EXPECT_TRUE(section->AtEnd());
  EXPECT_FALSE(reader->Section("missing").ok());

  // Same bytes under the wrong expected tag are refused.
  stream.clear();
  stream.seekg(0);
  EXPECT_FALSE(ModelReader::Open(stream, "other").ok());
}

// ---------------------------------------------------------------------------
// Full-zoo round trip through the model store.
// ---------------------------------------------------------------------------

BenchFlags LifecycleFlags() {
  BenchFlags flags;
  flags.fast = true;
  flags.scale = 0.05;
  flags.max_queries = 6;
  flags.exec_timeout = 10.0;
  flags.cache_dir = ::testing::TempDir() + "/cardbench_lifecycle_cache";
  flags.model_dir = ::testing::TempDir() + "/cardbench_lifecycle_models";
  flags.training_queries = 100;
  return flags;
}

class EstimatorLifecycleTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    if (env_ != nullptr) return;
    // Stale artifacts from previous runs would turn the "train" leg into a
    // second load; start every suite run from a cold store.
    std::filesystem::remove_all(LifecycleFlags().model_dir);
    auto env = BenchEnv::Create(BenchDataset::kStats, LifecycleFlags());
    ASSERT_TRUE(env.ok()) << env.status().ToString();
    env_ = env->release();
  }

  static BenchEnv* env_;
};

BenchEnv* EstimatorLifecycleTest::env_ = nullptr;

TEST_P(EstimatorLifecycleTest, StoreRoundTripIsBitIdentical) {
  const std::string name = GetParam();

  if (name == "TrueCard") {
    // The oracle has no model: nothing to persist, size zero by definition.
    auto est = env_->MakeNamedEstimator(name);
    ASSERT_TRUE(est.ok()) << est.status().ToString();
    std::stringstream sink;
    EXPECT_EQ((*est)->Serialize(sink).code(), StatusCode::kUnsupported);
    EXPECT_EQ((*est)->ModelBytes(), 0u);
    return;
  }

  ModelStoreStats first_stats;
  auto trained = env_->MakeNamedEstimator(name, &first_stats);
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  ASSERT_TRUE(std::filesystem::exists(first_stats.path))
      << name << " was not persisted to " << first_stats.path;
  EXPECT_GT((*trained)->ModelBytes(), 0u);

  ModelStoreStats second_stats;
  auto loaded = env_->MakeNamedEstimator(name, &second_stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(second_stats.loaded) << name << " retrained on a warm store";
  EXPECT_FALSE(second_stats.rebuilt_after_corruption);
  EXPECT_EQ((*loaded)->name(), (*trained)->name());
  // The loaded twin serializes to an artifact of the same size.
  EXPECT_EQ((*loaded)->ModelBytes(), (*trained)->ModelBytes());

  const Optimizer& opt = env_->optimizer();
  for (const auto& ctx : env_->query_contexts()) {
    auto plan_trained = opt.Plan(*ctx.graph, **trained);
    auto plan_loaded = opt.Plan(*ctx.graph, **loaded);
    ASSERT_TRUE(plan_trained.ok()) << plan_trained.status().ToString();
    ASSERT_TRUE(plan_loaded.ok()) << plan_loaded.status().ToString();

    // Bit-identical injected cardinalities for every estimated sub-plan.
    EXPECT_EQ(plan_loaded->num_estimates, plan_trained->num_estimates);
    ASSERT_EQ(plan_loaded->injected_cards.size(),
              plan_trained->injected_cards.size());
    for (const auto& [mask, card] : plan_trained->injected_cards) {
      auto it = plan_loaded->injected_cards.find(mask);
      ASSERT_NE(it, plan_loaded->injected_cards.end())
          << ctx.query->name << " mask " << mask;
      EXPECT_EQ(it->second, card)
          << ctx.query->name << " mask " << mask << " under " << name;
    }

    // Same chosen plan and cost, hence the same EXPLAIN output.
    EXPECT_EQ(plan_loaded->plan->Explain(), plan_trained->plan->Explain())
        << ctx.query->name;
    EXPECT_EQ(plan_loaded->plan->estimated_cost,
              plan_trained->plan->estimated_cost);

    // Same P-Error: identical plans recost identically against the shared
    // true-cardinality denominator.
    const double cost_trained =
        opt.RecostWithCards(*plan_trained->plan, ctx.true_cards);
    const double cost_loaded =
        opt.RecostWithCards(*plan_loaded->plan, ctx.true_cards);
    EXPECT_EQ(cost_loaded, cost_trained) << ctx.query->name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllEstimators, EstimatorLifecycleTest,
                         ::testing::ValuesIn(AllEstimatorNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Direct stream round trips and post-load behavior.
// ---------------------------------------------------------------------------

TEST(PostgresModelSerializationTest, LoadedModelEstimatesIdentically) {
  StatsGenConfig config;
  config.scale = 0.03;
  auto db = GenerateStatsDatabase(config);
  PostgresEstimator original(*db);
  std::stringstream stream;
  ASSERT_TRUE(original.Serialize(stream).ok());

  auto loaded = PostgresEstimator::Deserialize(*db, stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  for (const char* sql : {
           "SELECT COUNT(*) FROM users WHERE users.Reputation >= 100;",
           "SELECT COUNT(*) FROM posts WHERE posts.PostTypeId = 1 AND "
           "posts.Score >= 3;",
           "SELECT COUNT(*) FROM users, badges WHERE users.Id = "
           "badges.UserId AND badges.Date >= 1000;",
       }) {
    auto q = ParseSql(sql);
    ASSERT_TRUE(q.ok());
    EXPECT_DOUBLE_EQ((*loaded)->EstimateCard(*q), original.EstimateCard(*q))
        << sql;
  }
}

TEST(PostgresModelSerializationTest, DeserializeFromEmptyStreamFails) {
  StatsGenConfig config;
  config.scale = 0.02;
  auto db = GenerateStatsDatabase(config);
  std::stringstream empty;
  auto result = PostgresEstimator::Deserialize(*db, empty);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(BayesCardSerializationTest, LoadedModelStillUpdates) {
  // The deserialized model (no row bins in memory) must survive the
  // incremental-update path: bins are recomputed lazily on Update().
  StatsGenConfig config;
  config.scale = 0.04;
  auto db = GenerateStatsDatabase(config);
  BayesCardEstimator original(*db);
  std::stringstream stream;
  ASSERT_TRUE(original.Serialize(stream).ok());
  auto loaded = BayesCardEstimator::Deserialize(*db, stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  Table& tags = db->TableOrDie("tags");
  const size_t before = tags.num_rows();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        tags.AppendRow({static_cast<Value>(before + 1 + i), 77, std::nullopt})
            .ok());
  }
  ASSERT_TRUE((*loaded)->Update().ok());
  Query q;
  q.tables = {"tags"};
  // The updated estimate tracks the new row count.
  EXPECT_NEAR((*loaded)->EstimateCard(q), static_cast<double>(before + 20),
              (before + 20) * 0.05);
}

TEST(RegistryDeserializeTest, RefusesMismatchedArtifact) {
  StatsGenConfig config;
  config.scale = 0.02;
  auto db = GenerateStatsDatabase(config);
  PostgresEstimator pg(*db);
  std::stringstream stream;
  ASSERT_TRUE(pg.Serialize(stream).ok());
  // A pgstats artifact must not deserialize as MultiHist.
  auto wrong = DeserializeEstimator("MultiHist", *db, stream);
  EXPECT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);
}

TEST(NoisyOracleTest, SigmaZeroIsExactAndDeterministic) {
  StatsGenConfig config;
  config.scale = 0.02;
  auto db = GenerateStatsDatabase(config);
  TrueCardService svc(*db);
  NoisyOracleEstimator exact(svc, 0.0);
  auto q = ParseSql("SELECT COUNT(*) FROM users WHERE users.Reputation >= 5;");
  ASSERT_TRUE(q.ok());
  const double truth = *svc.Card(*q);
  EXPECT_DOUBLE_EQ(exact.EstimateCard(*q), std::max(1.0, truth));

  // Same sub-plan, same perturbation — across calls and instances.
  NoisyOracleEstimator noisy_a(svc, 2.0);
  NoisyOracleEstimator noisy_b(svc, 2.0);
  const double first = noisy_a.EstimateCard(*q);
  EXPECT_DOUBLE_EQ(noisy_a.EstimateCard(*q), first);
  EXPECT_DOUBLE_EQ(noisy_b.EstimateCard(*q), first);
}

TEST(NoisyOracleTest, ErrorMagnitudeTracksSigma) {
  StatsGenConfig config;
  config.scale = 0.03;
  auto db = GenerateStatsDatabase(config);
  TrueCardService svc(*db);
  NoisyOracleEstimator mild(svc, 0.5);
  NoisyOracleEstimator wild(svc, 4.0);

  Rng rng(3);
  double mild_err = 0, wild_err = 0;
  size_t n = 0;
  for (const auto& table : db->table_names()) {
    Query q;
    q.tables = {table};
    const double truth = *svc.Card(q);
    mild_err += QError(mild.EstimateCard(q), truth);
    wild_err += QError(wild.EstimateCard(q), truth);
    ++n;
  }
  EXPECT_GT(wild_err / static_cast<double>(n),
            mild_err / static_cast<double>(n));
}

}  // namespace
}  // namespace cardbench
