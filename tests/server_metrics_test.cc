#include "server/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace cardbench {
namespace {

TEST(LatencyHistogramTest, QuantilesBracketObservations) {
  LatencyHistogram histogram;
  // 1000 observations spread uniformly over [1ms, 1s).
  for (int i = 0; i < 1000; ++i) {
    histogram.Record(1e-3 + i * (1.0 - 1e-3) / 1000.0);
  }
  const auto snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_NEAR(snap.MeanSeconds(), 0.5, 0.05);

  // Quantile uses the bucket upper bound, so it never understates: the
  // reported p50 must be >= the true median and within one log bucket
  // (a factor of 10^(1/12) ~ 1.21) of it.
  const double p50 = snap.Quantile(0.5);
  EXPECT_GE(p50, 0.5);
  EXPECT_LE(p50, 0.5 * 1.25);
  const double p99 = snap.Quantile(0.99);
  EXPECT_GE(p99, 0.99);
  EXPECT_LE(p99, 1.0 * 1.25);
  // Quantiles are monotone in q.
  EXPECT_LE(snap.Quantile(0.5), snap.Quantile(0.99));
  EXPECT_LE(snap.Quantile(0.99), snap.Quantile(0.999));
}

TEST(LatencyHistogramTest, ClampsOutOfRangeObservations) {
  LatencyHistogram histogram;
  histogram.Record(0.0);      // below the 1us floor
  histogram.Record(-5.0);     // nonsense, still must not crash or wrap
  histogram.Record(1e9);      // far above the top bucket
  const auto snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 3u);
  // Everything landed in real buckets: totals match the count.
  uint64_t total = 0;
  for (uint64_t bucket : snap.buckets) total += bucket;
  EXPECT_EQ(total, 3u);
  // The huge observation is clamped into the last bucket.
  EXPECT_EQ(snap.buckets.back(), 1u);
  // The tiny ones into the first.
  EXPECT_EQ(snap.buckets.front(), 2u);
}

TEST(LatencyHistogramTest, EmptySnapshotIsZero) {
  LatencyHistogram histogram;
  const auto snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_EQ(snap.MeanSeconds(), 0.0);
}

TEST(LatencyHistogramTest, BucketBoundsAreLogSpaced) {
  // 12 buckets per decade: bound(i+12) == 10 * bound(i).
  for (size_t i = 0; i + 12 < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_NEAR(LatencyHistogram::BucketUpperBound(i + 12) /
                    LatencyHistogram::BucketUpperBound(i),
                10.0, 1e-9);
  }
  EXPECT_NEAR(LatencyHistogram::BucketUpperBound(0),
              LatencyHistogram::kMinSeconds, 1e-12);
}

TEST(LatencyHistogramTest, ConcurrentRecordsLoseNothing) {
  LatencyHistogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(1e-4);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t total = 0;
  for (uint64_t bucket : snap.buckets) total += bucket;
  EXPECT_EQ(total, snap.count);
}

TEST(ServerMetricsTest, RenderTextExposesCountersGaugesAndQuantiles) {
  ServerMetrics metrics;
  metrics.counters().requests_received.fetch_add(3);
  metrics.counters().completed.fetch_add(2);
  metrics.counters().rejected.fetch_add(1);
  metrics.RecordLatency("PostgreSQL", 0.010);
  metrics.RecordLatency("PostgreSQL", 0.020);
  metrics.RecordLatency("MSCN", 0.001);

  ServerGauges gauges;
  gauges.queue_depth = 4;
  gauges.queue_capacity = 256;
  gauges.in_flight = 2;
  gauges.open_connections = 3;
  gauges.cache.hits = 10;
  gauges.cache.misses = 30;

  const std::string text = metrics.RenderText(gauges);
  EXPECT_NE(text.find("cardserved_requests_total 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("cardserved_completed_total 2"), std::string::npos);
  EXPECT_NE(text.find("cardserved_rejected_total 1"), std::string::npos);
  EXPECT_NE(text.find("cardserved_queue_depth 4"), std::string::npos);
  EXPECT_NE(text.find("cardserved_queue_capacity 256"), std::string::npos);
  EXPECT_NE(text.find("cardserved_cache_hit_rate 0.25"), std::string::npos);
  // One latency series per estimator, three quantiles each.
  for (const char* name : {"PostgreSQL", "MSCN"}) {
    for (const char* q : {"0.5", "0.99", "0.999"}) {
      const std::string series =
          std::string("cardserved_latency_seconds{estimator=\"") + name +
          "\",quantile=\"" + q + "\"}";
      EXPECT_NE(text.find(series), std::string::npos) << series;
    }
  }
  EXPECT_NE(
      text.find("cardserved_latency_seconds_count{estimator=\"MSCN\"} 1"),
      std::string::npos);
}

TEST(ServerMetricsTest, LatencySnapshotsAreNameSorted) {
  ServerMetrics metrics;
  metrics.RecordLatency("Zeta", 0.001);
  metrics.RecordLatency("Alpha", 0.002);
  metrics.RecordLatency("Mid", 0.003);
  const auto snapshots = metrics.LatencySnapshots();
  ASSERT_EQ(snapshots.size(), 3u);
  EXPECT_EQ(snapshots[0].first, "Alpha");
  EXPECT_EQ(snapshots[1].first, "Mid");
  EXPECT_EQ(snapshots[2].first, "Zeta");
}

TEST(ServerMetricsTest, RenderJsonIsWellFormedAndComplete) {
  ServerMetrics metrics;
  metrics.counters().requests_received.fetch_add(5);
  metrics.RecordLatency("PostgreSQL", 0.005);
  ServerGauges gauges;
  gauges.queue_capacity = 128;

  const std::string json = metrics.RenderJson(gauges);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"requests\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"queue_capacity\":128"), std::string::npos);
  EXPECT_NE(json.find("\"PostgreSQL\":{\"count\":1"), std::string::npos);
  // Balanced braces — a cheap well-formedness check without a parser.
  int depth = 0;
  for (char ch : json) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(ServerMetricsTest, WriteJsonSnapshotReplacesFileAtomically) {
  ServerMetrics metrics;
  metrics.counters().requests_received.fetch_add(1);
  const std::string path =
      ::testing::TempDir() + "/cardserved_snapshot_test.json";

  ServerGauges gauges;
  ASSERT_TRUE(metrics.WriteJsonSnapshot(path, gauges).ok());
  metrics.counters().requests_received.fetch_add(1);
  ASSERT_TRUE(metrics.WriteJsonSnapshot(path, gauges).ok());

  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(file);
  EXPECT_NE(contents.find("\"requests\":2"), std::string::npos) << contents;
  // No stale temp file left behind.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "r");
  EXPECT_EQ(tmp, nullptr);
  if (tmp) std::fclose(tmp);
  std::remove(path.c_str());
}

TEST(ServerMetricsTest, WriteJsonSnapshotFailsOnBadPath) {
  ServerMetrics metrics;
  ServerGauges gauges;
  EXPECT_FALSE(
      metrics.WriteJsonSnapshot("/nonexistent-dir/snapshot.json", gauges)
          .ok());
}

}  // namespace
}  // namespace cardbench
