#include "server/server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/str_util.h"
#include "datagen/stats_gen.h"
#include "query/parser.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/request_executor.h"
#include "service/estimation_service.h"
#include "service/load_driver.h"

namespace cardbench {
namespace {

// ---------------------------------------------------------------------------
// Protocol unit tests (no sockets, no database).
// ---------------------------------------------------------------------------

TEST(ProtocolTest, RequestRoundTrip) {
  ServerRequest request;
  request.id = 42;
  request.estimator = "PostgreSQL";
  request.sql = "SELECT COUNT(*) FROM users WHERE users.Reputation >= 1;";
  request.subplan_mask = 5;
  request.deadline_ms = 12.5;

  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->id, request.id);
  EXPECT_EQ(decoded->estimator, request.estimator);
  EXPECT_EQ(decoded->sql, request.sql);
  EXPECT_EQ(decoded->subplan_mask, request.subplan_mask);
  EXPECT_DOUBLE_EQ(decoded->deadline_ms, request.deadline_ms);
}

TEST(ProtocolTest, ResponseRoundTripPreservesExactDoubles) {
  ServerResponse response;
  response.id = 7;
  response.code = StatusCode::kOk;
  response.cards[1] = 42.125;
  response.cards[3] = 1.0 / 3.0;  // needs all 17 significant digits
  response.cache_hits = 2;
  response.cache_misses = 1;
  response.elapsed_us = 913.25;

  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->id, 7u);
  EXPECT_TRUE(decoded->ok());
  ASSERT_EQ(decoded->cards.size(), 2u);
  EXPECT_EQ(decoded->cards.at(1), 42.125);
  EXPECT_EQ(decoded->cards.at(3), 1.0 / 3.0);  // bit-identical round trip
  EXPECT_EQ(decoded->cache_hits, 2u);
  EXPECT_EQ(decoded->cache_misses, 1u);
  EXPECT_DOUBLE_EQ(decoded->elapsed_us, 913.25);
}

TEST(ProtocolTest, RejectionResponseCarriesBackpressurePayload) {
  ServerResponse response;
  response.id = 9;
  response.code = StatusCode::kResourceExhausted;
  response.error = "estimation queue full";
  response.queue_depth = 256;
  response.retry_after_ms = 3.5;

  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->code, StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded->error, "estimation queue full");
  EXPECT_EQ(decoded->queue_depth, 256u);
  EXPECT_DOUBLE_EQ(decoded->retry_after_ms, 3.5);
  EXPECT_EQ(decoded->ToStatus().code(), StatusCode::kResourceExhausted);
}

TEST(ProtocolTest, DecodeRequestRejectsGarbage) {
  EXPECT_FALSE(DecodeRequest("not json at all").ok());
  EXPECT_FALSE(DecodeRequest("{\"id\":1}").ok());  // missing estimator+sql
  EXPECT_FALSE(
      DecodeRequest("{\"estimator\":\"x\",\"sql\":\"y\"} trailing").ok());
  EXPECT_FALSE(
      DecodeRequest(
          "{\"estimator\":\"x\",\"sql\":\"y\",\"deadline_ms\":-1}")
          .ok());
}

TEST(ProtocolTest, FrameReaderHandlesArbitraryFragmentation) {
  const std::string frame_a = EncodeFrame("{\"a\":1}");
  const std::string frame_b = EncodeFrame("{\"b\":2}");
  const std::string stream = frame_a + frame_b;

  FrameReader reader;
  std::string payload;
  // Byte-at-a-time delivery: both frames must still come out whole.
  std::vector<std::string> payloads;
  for (char byte : stream) {
    reader.Feed(&byte, 1);
    while (reader.Next(&payload).ok()) payloads.push_back(payload);
  }
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], "{\"a\":1}");
  EXPECT_EQ(payloads[1], "{\"b\":2}");
  EXPECT_EQ(reader.Next(&payload).code(), StatusCode::kNotFound);
}

TEST(ProtocolTest, FrameReaderRejectsOversizedLength) {
  FrameReader reader;
  const uint32_t huge = kMaxFrameBytes + 1;
  char prefix[4] = {static_cast<char>(huge >> 24),
                    static_cast<char>(huge >> 16),
                    static_cast<char>(huge >> 8), static_cast<char>(huge)};
  reader.Feed(prefix, sizeof(prefix));
  std::string payload;
  EXPECT_EQ(reader.Next(&payload).code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, FrameReaderDetectsHttpGet) {
  FrameReader reader;
  const char* probe = "GET /metrics HTTP/1.1\r\n\r\n";
  reader.Feed(probe, std::strlen(probe));
  EXPECT_TRUE(reader.LooksLikeHttpGet());

  FrameReader binary;
  const std::string frame = EncodeFrame("{}");
  binary.Feed(frame.data(), frame.size());
  EXPECT_FALSE(binary.LooksLikeHttpGet());
}

TEST(ProtocolTest, StatusCodeNamesRoundTrip) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kResourceExhausted, StatusCode::kDeadlineExceeded,
        StatusCode::kUnavailable, StatusCode::kInternal}) {
    EXPECT_EQ(StatusCodeFromName(StatusCodeName(code)), code);
  }
  EXPECT_EQ(StatusCodeFromName("Bogus"), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// Server tests against a real loopback socket.
// ---------------------------------------------------------------------------

/// Deterministic estimator: pure function of the sub-plan's canonical key.
class HashEstimator : public CardinalityEstimator {
 public:
  explicit HashEstimator(std::string name = "Hash")
      : name_(std::move(name)) {}
  std::string name() const override { return name_; }
  double EstimateCard(const Query& subquery) const override {
    return 1.0 +
           static_cast<double>(Fnv1aHash(subquery.CanonicalKey()) % 1000003);
  }

 private:
  std::string name_;
};

/// Parks inside EstimateCard until released — pins a worker so queue depth
/// and drain behavior can be tested deterministically.
class GateEstimator : public CardinalityEstimator {
 public:
  std::string name() const override { return "Gate"; }
  double EstimateCard(const Query&) const override {
    std::unique_lock<std::mutex> lock(mu_);
    ++entered_;
    cv_.notify_all();
    cv_.wait(lock, [this] { return released_; });
    return 42.0;
  }
  void WaitUntilEntered() const {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return entered_ > 0; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable int entered_ = 0;
  bool released_ = false;
};

constexpr const char* kJoinSql =
    "SELECT COUNT(*) FROM posts, comments WHERE posts.Id = "
    "comments.PostId AND comments.Score >= 1;";
constexpr const char* kSingleSql =
    "SELECT COUNT(*) FROM users WHERE users.Reputation >= 100;";

class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StatsGenConfig config;
    config.scale = 0.05;
    db_ = GenerateStatsDatabase(config).release();
  }
  static void TearDownTestSuite() { delete db_; }

  static Database* db_;
};

Database* ServerTest::db_ = nullptr;

/// Raw blocking connection for protocol-violation tests (CardClient only
/// speaks well-formed frames).
int RawConnect(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  return fd;
}

void RawSend(int fd, const std::string& bytes) {
  ASSERT_EQ(send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
}

/// Blocks for the next frame; empty optional-style: ok=false means EOF.
bool RawReadFrame(int fd, std::string* payload) {
  FrameReader reader;
  char buf[4096];
  for (;;) {
    if (reader.Next(payload).ok()) return true;
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    reader.Feed(buf, static_cast<size_t>(n));
  }
}

TEST_F(ServerTest, RoundTripMatchesServiceForEveryEstimator) {
  EstimationService service;
  service.RegisterEstimator(std::make_unique<HashEstimator>("HashA"));
  service.RegisterEstimator(std::make_unique<HashEstimator>("HashB"));
  CardServer server(service, *db_);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  auto query = ParseSql(kJoinSql);
  ASSERT_TRUE(query.ok());
  const QueryGraph graph(*query, *db_);

  CardClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  for (const std::string& estimator : {std::string("HashA"),
                                       std::string("HashB")}) {
    auto expected = service.EstimateQuerySync(estimator, graph);
    ASSERT_TRUE(expected.ok());

    ServerRequest request;
    request.estimator = estimator;
    request.sql = kJoinSql;
    auto response = client.Call(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response->ok()) << response->error;
    ASSERT_EQ(response->cards.size(), expected->size());
    for (const auto& [mask, card] : *expected) {
      EXPECT_EQ(response->cards.at(mask), card) << "mask " << mask;
    }
    EXPECT_GT(response->elapsed_us, 0.0);
  }
  const ServerGauges gauges = server.Gauges();
  EXPECT_EQ(gauges.open_connections, 1u);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST_F(ServerTest, SingleMaskRequestAndInvalidMaskValidation) {
  EstimationService service;
  service.RegisterEstimator(std::make_unique<HashEstimator>());
  CardServer server(service, *db_);
  ASSERT_TRUE(server.Start().ok());

  CardClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  ServerRequest request;
  request.estimator = "Hash";
  request.sql = kSingleSql;
  request.subplan_mask = 1;  // the only table
  auto response = client.Call(request);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->ok()) << response->error;
  EXPECT_EQ(response->cards.size(), 1u);
  EXPECT_TRUE(response->cards.count(1));

  request.subplan_mask = 2;  // selects an absent table
  response = client.Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, UnknownEstimatorAndBadSqlAnswerStructuredErrors) {
  EstimationService service;
  service.RegisterEstimator(std::make_unique<HashEstimator>());
  CardServer server(service, *db_);
  ASSERT_TRUE(server.Start().ok());

  CardClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  ServerRequest request;
  request.estimator = "NoSuchModel";
  request.sql = kSingleSql;
  auto response = client.Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, StatusCode::kNotFound);

  request.estimator = "Hash";
  request.sql = "SELECT nonsense";
  response = client.Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->ok());
  // The connection survives a structured error.
  request.sql = kSingleSql;
  response = client.Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->ok()) << response->error;
}

TEST_F(ServerTest, AdmissionRejectCarriesQueueDepthAndRetryHint) {
  ServiceOptions options;
  options.num_threads = 1;
  options.queue_depth = 1;
  EstimationService service(options);
  auto gate = std::make_unique<GateEstimator>();
  GateEstimator* gate_ptr = gate.get();
  service.RegisterEstimator(std::move(gate));
  CardServer server(service, *db_);
  ASSERT_TRUE(server.Start().ok());

  auto call = [&server](double deadline_ms = 0.0) {
    CardClient client;
    Status connected = client.Connect("127.0.0.1", server.port());
    EXPECT_TRUE(connected.ok()) << connected.ToString();
    ServerRequest request;
    request.estimator = "Gate";
    request.sql = kSingleSql;
    request.deadline_ms = deadline_ms;
    return client.Call(request);
  };

  // First request pins the only worker inside the gate; the second fills
  // the depth-1 queue.
  std::thread first([&] {
    auto response = call();
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response->ok()) << response->error;
  });
  gate_ptr->WaitUntilEntered();
  std::thread second([&] {
    auto response = call();
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response->ok()) << response->error;
  });
  while (service.queue_size() < 1) std::this_thread::yield();

  // Third has nowhere to go: immediate structured rejection, not a hang.
  auto rejected = call();
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected->code, StatusCode::kResourceExhausted);
  EXPECT_GE(rejected->queue_depth, 1u);
  EXPECT_GT(rejected->retry_after_ms, 0.0);
  EXPECT_NE(rejected->error.find("queue full"), std::string::npos);

  gate_ptr->Release();
  first.join();
  second.join();
  server.Stop();
}

TEST_F(ServerTest, QueuedRequestPastDeadlineAnswersDeadlineExceeded) {
  ServiceOptions options;
  options.num_threads = 1;
  EstimationService service(options);
  auto gate = std::make_unique<GateEstimator>();
  GateEstimator* gate_ptr = gate.get();
  service.RegisterEstimator(std::move(gate));
  CardServer server(service, *db_);
  ASSERT_TRUE(server.Start().ok());

  std::thread pinned([&] {
    CardClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    ServerRequest request;
    request.estimator = "Gate";
    request.sql = kSingleSql;
    auto response = client.Call(request);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response->ok());
  });
  gate_ptr->WaitUntilEntered();

  // This request sits in the queue behind the pinned worker; its 1ms
  // deadline expires there long before the gate opens.
  std::thread deadlined([&] {
    CardClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    ServerRequest request;
    request.estimator = "Gate";
    request.sql = kSingleSql;
    request.deadline_ms = 1.0;
    auto response = client.Call(request);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->code, StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(response->cards.empty());
  });
  while (service.queue_size() < 1) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  gate_ptr->Release();
  pinned.join();
  deadlined.join();
  server.Stop();
}

TEST_F(ServerTest, MalformedFrameAnsweredInBandConnectionSurvives) {
  EstimationService service;
  service.RegisterEstimator(std::make_unique<HashEstimator>());
  CardServer server(service, *db_);
  ASSERT_TRUE(server.Start().ok());

  const int fd = RawConnect(server.port());
  RawSend(fd, EncodeFrame("this is not json"));
  std::string payload;
  ASSERT_TRUE(RawReadFrame(fd, &payload));
  auto error = DecodeResponse(payload);
  ASSERT_TRUE(error.ok()) << error.status().ToString();
  EXPECT_EQ(error->id, 0u);
  EXPECT_FALSE(error->ok());

  // Frame sync is intact: a valid request on the same connection works.
  ServerRequest request;
  request.id = 3;
  request.estimator = "Hash";
  request.sql = kSingleSql;
  RawSend(fd, EncodeFrame(EncodeRequest(request)));
  ASSERT_TRUE(RawReadFrame(fd, &payload));
  auto response = DecodeResponse(payload);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->id, 3u);
  EXPECT_TRUE(response->ok()) << response->error;
  close(fd);
  server.Stop();
  EXPECT_EQ(server.metrics().counters().malformed_frames.load(), 1u);
}

TEST_F(ServerTest, OversizedFrameClosesConnection) {
  EstimationService service;
  service.RegisterEstimator(std::make_unique<HashEstimator>());
  CardServer server(service, *db_);
  ASSERT_TRUE(server.Start().ok());

  const int fd = RawConnect(server.port());
  const uint32_t huge = kMaxFrameBytes + 1;
  char prefix[4] = {static_cast<char>(huge >> 24),
                    static_cast<char>(huge >> 16),
                    static_cast<char>(huge >> 8), static_cast<char>(huge)};
  RawSend(fd, std::string(prefix, sizeof(prefix)));
  std::string payload;
  EXPECT_FALSE(RawReadFrame(fd, &payload));  // EOF: server closed it
  close(fd);
  server.Stop();
}

TEST_F(ServerTest, MetricsEndpointServesTextAndJson) {
  EstimationService service;
  service.RegisterEstimator(std::make_unique<HashEstimator>());
  CardServer server(service, *db_);
  ASSERT_TRUE(server.Start().ok());

  // Serve one request so the counters and one histogram are non-zero.
  CardClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ServerRequest request;
  request.estimator = "Hash";
  request.sql = kSingleSql;
  auto response = client.Call(request);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->ok());

  auto text = FetchServerMetrics("127.0.0.1", server.port());
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("cardserved_requests_total 1"), std::string::npos)
      << *text;
  EXPECT_NE(text->find("cardserved_completed_total 1"), std::string::npos);
  EXPECT_NE(text->find("cardserved_latency_seconds{estimator=\"Hash\","
                       "quantile=\"0.99\"}"),
            std::string::npos)
      << *text;

  auto json = FetchServerMetrics("127.0.0.1", server.port(),
                                 "/metrics.json");
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"requests\":1"), std::string::npos) << *json;
  EXPECT_NE(json->find("\"Hash\""), std::string::npos);

  auto missing = FetchServerMetrics("127.0.0.1", server.port(), "/nope");
  EXPECT_FALSE(missing.ok());
  server.Stop();
}

TEST_F(ServerTest, GracefulShutdownDrainsInFlightAndRejectsNewWork) {
  ServiceOptions options;
  options.num_threads = 1;
  EstimationService service(options);
  auto gate = std::make_unique<GateEstimator>();
  GateEstimator* gate_ptr = gate.get();
  service.RegisterEstimator(std::move(gate));
  ServerOptions server_options;
  server_options.drain_timeout_seconds = 30.0;
  CardServer server(service, *db_, server_options);
  ASSERT_TRUE(server.Start().ok());

  // A second connection established before shutdown, used to probe drain
  // behavior afterwards.
  CardClient late_client;
  ASSERT_TRUE(late_client.Connect("127.0.0.1", server.port()).ok());

  std::atomic<bool> drained_response_ok{false};
  std::thread in_flight([&] {
    CardClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    ServerRequest request;
    request.estimator = "Gate";
    request.sql = kSingleSql;
    auto response = client.Call(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    drained_response_ok.store(response->ok());
  });
  gate_ptr->WaitUntilEntered();

  server.NotifyShutdown();  // what the SIGTERM handler calls

  // New work on the pre-existing connection is rejected while draining.
  ServerRequest request;
  request.estimator = "Gate";
  request.sql = kSingleSql;
  auto rejected = late_client.Call(request);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected->code, StatusCode::kUnavailable);

  // The in-flight request is not dropped: release the gate and the drain
  // delivers its response before the loop exits.
  gate_ptr->Release();
  in_flight.join();
  EXPECT_TRUE(drained_response_ok.load());

  server.Wait();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.in_flight(), 0u);  // zero leaked requests
}

TEST_F(ServerTest, SocketBackendDrivesLoadThroughTheServer) {
  ServiceOptions options;
  options.num_threads = 2;
  EstimationService service(options);
  service.RegisterEstimator(std::make_unique<HashEstimator>());
  CardServer server(service, *db_);
  ASSERT_TRUE(server.Start().ok());

  SocketEstimateBackend backend("127.0.0.1", server.port(),
                                {kJoinSql, kSingleSql});
  LoadDriver driver(backend);
  LoadOptions load;
  load.estimator = "Hash";
  load.concurrency = 4;
  load.replays = 5;
  auto report = driver.Run(load);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->requests, 2u * 5u);
  EXPECT_GT(report->QueriesPerSecond(), 0.0);
  // Replays past the first are cache hits, observed through the wire
  // protocol's per-response counters.
  EXPECT_GT(report->cache.hits, 0u);
  server.Stop();
}

// ---------------------------------------------------------------------------
// RequestExecutor unit tests (no sockets).
// ---------------------------------------------------------------------------

TEST_F(ServerTest, RequestExecutorGraphCacheIsBoundedLru) {
  EstimationService service;
  service.RegisterEstimator(std::make_unique<HashEstimator>());
  RequestExecutor executor(service, *db_, /*graph_cache_capacity=*/2);

  auto g1 = executor.Compile(kJoinSql);
  ASSERT_TRUE(g1.ok());
  auto g1_again = executor.Compile(kJoinSql);
  ASSERT_TRUE(g1_again.ok());
  EXPECT_EQ(g1->get(), g1_again->get());  // memoized, not recompiled
  ASSERT_TRUE(executor.Compile(kSingleSql).ok());
  EXPECT_EQ(executor.graph_cache_size(), 2u);

  ASSERT_TRUE(
      executor
          .Compile("SELECT COUNT(*) FROM badges WHERE badges.UserId >= 1;")
          .ok());
  EXPECT_EQ(executor.graph_cache_size(), 2u);  // LRU evicted one
  // The evicted graph stays valid through the shared_ptr.
  EXPECT_GT((*g1)->num_tables(), 0u);
}

TEST_F(ServerTest, RequestExecutorAnswersParseErrorsSynchronously) {
  EstimationService service;
  service.RegisterEstimator(std::make_unique<HashEstimator>());
  RequestExecutor executor(service, *db_);

  ServerRequest request;
  request.estimator = "Hash";
  request.sql = "SELECT garbage";
  const ServerResponse response = executor.ExecuteSync(request);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.code, StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cardbench
