#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/str_util.h"
#include "query/parser.h"
#include "service/estimation_service.h"
#include "service/load_driver.h"
#include "service/request_queue.h"

namespace cardbench {
namespace {

/// Deterministic stand-in estimator: the estimate is a pure function of the
/// sub-plan's canonical key, so serial and concurrent runs must agree to the
/// last bit. Counts EstimateCard invocations to observe cache effectiveness.
class HashEstimator : public CardinalityEstimator {
 public:
  std::string name() const override { return "Hash"; }
  double EstimateCard(const Query& subquery) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    return 1.0 +
           static_cast<double>(Fnv1aHash(subquery.CanonicalKey()) % 1000003);
  }
  size_t calls() const { return calls_.load(); }

 private:
  mutable std::atomic<size_t> calls_{0};
};

/// Updatable estimator whose answers change with every Update() — lets the
/// tests prove that NotifyDataUpdate actually invalidates cached estimates.
class VersionedEstimator : public CardinalityEstimator {
 public:
  std::string name() const override { return "Versioned"; }
  double EstimateCard(const Query& subquery) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    return 1e6 * static_cast<double>(model_version_.load()) +
           static_cast<double>(subquery.tables.size());
  }
  bool SupportsUpdate() const override { return true; }
  Status Update() override {
    model_version_.fetch_add(1);
    ++update_calls_;
    return Status::OK();
  }
  size_t calls() const { return calls_.load(); }
  size_t update_calls() const { return update_calls_; }

 private:
  mutable std::atomic<size_t> calls_{0};
  std::atomic<uint64_t> model_version_{1};
  size_t update_calls_ = 0;
};

/// Estimator that parks inside EstimateCard until released — used to pin a
/// worker so the request queue can be filled deterministically.
class GateEstimator : public CardinalityEstimator {
 public:
  std::string name() const override { return "Gate"; }
  double EstimateCard(const Query&) const override {
    std::unique_lock<std::mutex> lock(mu_);
    ++entered_;
    cv_.notify_all();
    cv_.wait(lock, [this] { return released_; });
    return 42.0;
  }
  void WaitUntilEntered() const {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return entered_ > 0; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable int entered_ = 0;
  bool released_ = false;
};

Query Parse(const std::string& sql) {
  auto q = ParseSql(sql);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

std::vector<Query> TestQueries() {
  std::vector<Query> queries;
  queries.push_back(Parse(
      "SELECT COUNT(*) FROM users, posts, comments, badges WHERE "
      "users.Id = posts.OwnerUserId AND posts.Id = comments.PostId AND "
      "users.Id = badges.UserId AND posts.Score >= 5 AND "
      "users.Reputation >= 30;"));
  queries.push_back(Parse(
      "SELECT COUNT(*) FROM posts, comments WHERE posts.Id = "
      "comments.PostId AND comments.Score >= 1;"));
  queries.push_back(
      Parse("SELECT COUNT(*) FROM users WHERE users.Reputation >= 100;"));
  return queries;
}

/// Serial ground truth: what one thread calling the estimator directly
/// computes for every connected sub-plan of `query`.
std::unordered_map<uint64_t, double> SerialEstimates(
    const CardinalityEstimator& estimator, const Query& query) {
  std::unordered_map<uint64_t, double> cards;
  for (uint64_t mask : EnumerateConnectedSubsets(query)) {
    cards[mask] = mask == query.FullMask()
                      ? estimator.EstimateCard(query)
                      : estimator.EstimateCard(query.Induced(mask));
  }
  return cards;
}

TEST(RequestQueueTest, TryPushRespectsCapacityAndNeverBlocks) {
  RequestQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full: immediate rejection
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.TryPush(3));  // space freed
  EXPECT_EQ(queue.size(), 2u);
}

TEST(RequestQueueTest, CloseDrainsPendingItemsThenReportsEmpty) {
  RequestQueue<int> queue(4);
  ASSERT_TRUE(queue.TryPush(7));
  ASSERT_TRUE(queue.TryPush(8));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(9));  // closed: no new admissions
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(queue.Pop(&out));  // closed and drained
}

TEST(RequestQueueTest, ZeroCapacityClampsToOne) {
  RequestQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_FALSE(queue.TryPush(2));
}

TEST(EstimationServiceTest, SingleSubplanMatchesDirectEstimate) {
  EstimationService service;
  service.RegisterEstimator(std::make_unique<HashEstimator>());
  HashEstimator reference;

  const Query q = TestQueries()[1];
  auto result = service.EstimateSync("Hash", q, q.FullMask());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, reference.EstimateCard(q));
}

TEST(EstimationServiceTest, WholeQueryCoversEveryConnectedSubplan) {
  EstimationService service;
  service.RegisterEstimator(std::make_unique<HashEstimator>());
  HashEstimator reference;

  for (const Query& q : TestQueries()) {
    auto cards = service.EstimateQuerySync("Hash", q);
    ASSERT_TRUE(cards.ok()) << cards.status().ToString();
    const auto expected = SerialEstimates(reference, q);
    ASSERT_EQ(cards->size(), expected.size());
    for (const auto& [mask, card] : expected) {
      ASSERT_TRUE(cards->count(mask)) << "missing mask " << mask;
      EXPECT_EQ(cards->at(mask), card) << "mask " << mask;
    }
  }
}

TEST(EstimationServiceTest, UnknownEstimatorReturnsNotFound) {
  EstimationService service;
  const Query q = TestQueries()[2];
  auto result = service.EstimateSync("NoSuchModel", q, q.FullMask());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(EstimationServiceTest, SubmitAfterShutdownIsRejectedWithoutCallback) {
  EstimationService service;
  service.RegisterEstimator(std::make_unique<HashEstimator>());
  service.Shutdown();

  const Query q = TestQueries()[2];
  std::atomic<bool> callback_ran{false};
  Status status =
      service.Submit(EstimateRequest{"Hash", &q, kAllSubplans},
                     [&](EstimateResponse) { callback_ran.store(true); });
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(callback_ran.load());
}

TEST(EstimationServiceTest, FullQueueRejectsWithResourceExhausted) {
  ServiceOptions options;
  options.num_threads = 1;
  options.queue_depth = 1;
  EstimationService service(options);
  auto gate = std::make_unique<GateEstimator>();
  GateEstimator* gate_ptr = gate.get();
  service.RegisterEstimator(std::move(gate));

  const Query q = TestQueries()[2];
  std::atomic<int> completed{0};
  auto done = [&](EstimateResponse response) {
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
    completed.fetch_add(1);
  };

  // First request occupies the single worker inside the gated EstimateCard.
  ASSERT_TRUE(service.Submit(EstimateRequest{"Gate", &q, q.FullMask()}, done)
                  .ok());
  gate_ptr->WaitUntilEntered();
  // Second request sits in the depth-1 queue; the third has nowhere to go.
  ASSERT_TRUE(service.Submit(EstimateRequest{"Gate", &q, q.FullMask()}, done)
                  .ok());
  Status overflow =
      service.Submit(EstimateRequest{"Gate", &q, q.FullMask()}, done);
  EXPECT_EQ(overflow.code(), StatusCode::kResourceExhausted);

  gate_ptr->Release();
  service.Shutdown();  // drains the queued request
  EXPECT_EQ(completed.load(), 2);
}

TEST(EstimationServiceTest, RejectionPayloadCarriesDepthAndRetryHint) {
  ServiceOptions options;
  options.num_threads = 1;
  options.queue_depth = 1;
  EstimationService service(options);
  auto gate = std::make_unique<GateEstimator>();
  GateEstimator* gate_ptr = gate.get();
  service.RegisterEstimator(std::move(gate));

  const Query q = TestQueries()[2];
  auto done = [](EstimateResponse) {};
  ASSERT_TRUE(service.Submit(EstimateRequest{"Gate", &q, q.FullMask()}, done)
                  .ok());
  gate_ptr->WaitUntilEntered();
  ASSERT_TRUE(service.Submit(EstimateRequest{"Gate", &q, q.FullMask()}, done)
                  .ok());
  Status overflow =
      service.Submit(EstimateRequest{"Gate", &q, q.FullMask()}, done);
  ASSERT_EQ(overflow.code(), StatusCode::kResourceExhausted);
  // The error payload is self-describing: observed depth and a backoff
  // hint, so network clients can be told when to come back.
  EXPECT_NE(overflow.message().find("depth 1/1"), std::string::npos)
      << overflow.ToString();
  EXPECT_NE(overflow.message().find("retry after"), std::string::npos);
  const double retry = service.SuggestedRetrySeconds();
  EXPECT_GE(retry, 1e-3);
  EXPECT_LE(retry, 1.0);

  gate_ptr->Release();
  service.Shutdown();  // drain the queued request while `q` is alive
}

TEST(EstimationServiceTest, DeadlineExpiredInQueueAnswersDeadlineExceeded) {
  ServiceOptions options;
  options.num_threads = 1;
  EstimationService service(options);
  auto gate = std::make_unique<GateEstimator>();
  GateEstimator* gate_ptr = gate.get();
  service.RegisterEstimator(std::move(gate));

  const Query q = TestQueries()[2];
  ASSERT_TRUE(service
                  .Submit(EstimateRequest{"Gate", &q, q.FullMask()},
                          [](EstimateResponse response) {
                            EXPECT_TRUE(response.status.ok());
                          })
                  .ok());
  gate_ptr->WaitUntilEntered();

  // Queued behind the pinned worker with a 1ms budget: by the time a worker
  // dequeues it the deadline has passed, so it must complete with
  // DeadlineExceeded and no estimates.
  std::promise<EstimateResponse> expired_promise;
  auto expired_future = expired_promise.get_future();
  EstimateRequest deadlined{"Gate", &q, kAllSubplans};
  deadlined.timeout_seconds = 1e-3;
  ASSERT_TRUE(service
                  .Submit(deadlined,
                          [&](EstimateResponse response) {
                            expired_promise.set_value(std::move(response));
                          })
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  gate_ptr->Release();

  const EstimateResponse response = expired_future.get();
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(response.cards.empty());
}

TEST(EstimationServiceTest, NegativeTimeoutIsRejectedUpFront) {
  EstimationService service;
  service.RegisterEstimator(std::make_unique<HashEstimator>());
  const Query q = TestQueries()[2];
  EstimateRequest request{"Hash", &q, q.FullMask()};
  request.timeout_seconds = -1.0;
  std::atomic<bool> callback_ran{false};
  Status status = service.Submit(
      request, [&](EstimateResponse) { callback_ran.store(true); });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(callback_ran.load());
}

TEST(EstimationServiceTest, EightThreadHammerMatchesSerialExactly) {
  ServiceOptions options;
  options.num_threads = 8;
  options.queue_depth = 64;
  EstimationService service(options);
  service.RegisterEstimator(std::make_unique<HashEstimator>());
  HashEstimator reference;

  const std::vector<Query> queries = TestQueries();
  std::vector<std::unordered_map<uint64_t, double>> expected;
  for (const Query& q : queries) {
    expected.push_back(SerialEstimates(reference, q));
  }

  constexpr size_t kClients = 8;
  constexpr size_t kIterations = 50;
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = 0; i < kIterations; ++i) {
        const size_t qi = (c + i) % queries.size();
        auto cards = service.EstimateQuerySync("Hash", queries[qi]);
        if (!cards.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // Byte-identical to the serial reference: exact double comparison.
        if (*cards != expected[qi]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(EstimationServiceTest, RepeatedReplayServesFromCache) {
  EstimationService service;
  auto owned = std::make_unique<HashEstimator>();
  HashEstimator* estimator = owned.get();
  service.RegisterEstimator(std::move(owned));

  const Query q = TestQueries()[0];
  const size_t num_subplans = EnumerateConnectedSubsets(q).size();

  auto first = service.EstimateQuerySync("Hash", q);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(estimator->calls(), num_subplans);
  EXPECT_EQ(service.cache_stats().misses, num_subplans);

  auto second = service.EstimateQuerySync("Hash", q);
  ASSERT_TRUE(second.ok());
  // Every sub-plan was served from the cache: the model was not re-invoked.
  EXPECT_EQ(estimator->calls(), num_subplans);
  EXPECT_EQ(service.cache_stats().hits, num_subplans);
  EXPECT_EQ(*first, *second);
}

TEST(EstimationServiceTest, DataUpdateInvalidatesCacheAndRefreshesModel) {
  EstimationService service;
  auto owned = std::make_unique<VersionedEstimator>();
  VersionedEstimator* estimator = owned.get();
  service.RegisterEstimator(std::move(owned));

  const Query q = TestQueries()[1];
  const size_t num_subplans = EnumerateConnectedSubsets(q).size();

  auto before = service.EstimateQuerySync("Versioned", q);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(estimator->calls(), num_subplans);

  ASSERT_TRUE(service.NotifyDataUpdate().ok());
  EXPECT_EQ(estimator->update_calls(), 1u);

  auto after = service.EstimateQuerySync("Versioned", q);
  ASSERT_TRUE(after.ok());
  // Stale entries were not served: the refresh advanced the model version,
  // so the pre-update entries (keyed to the old version) are unreachable
  // and every sub-plan was re-estimated against the refreshed model.
  EXPECT_EQ(estimator->calls(), 2 * num_subplans);
  EXPECT_EQ(service.cache_stats().misses, 2 * num_subplans);
  for (const auto& [mask, card] : *before) {
    EXPECT_NE(after->at(mask), card) << "mask " << mask;
  }
}

TEST(LoadDriverTest, ClosedLoopReplayReportsThroughputAndCacheDelta) {
  ServiceOptions options;
  options.num_threads = 4;
  EstimationService service(options);
  service.RegisterEstimator(std::make_unique<HashEstimator>());

  const std::vector<Query> queries = TestQueries();
  std::vector<const Query*> pointers;
  for (const Query& q : queries) pointers.push_back(&q);
  LoadDriver driver(service, pointers);

  LoadOptions load;
  load.estimator = "Hash";
  load.concurrency = 4;
  load.replays = 3;
  auto report = driver.Run(load);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report->requests, queries.size() * load.replays);
  EXPECT_GT(report->QueriesPerSecond(), 0.0);
  EXPECT_GE(report->latency.p99, report->latency.p50);
  // Replays 2 and 3 hit the sub-plan cache.
  EXPECT_GT(report->cache.hits, 0u);
  EXPECT_GT(report->cache.HitRate(), 0.0);
}

TEST(LoadDriverTest, UnknownEstimatorFailsFast) {
  EstimationService service;
  const Query q = TestQueries()[2];
  LoadDriver driver(service, {&q});
  LoadOptions load;
  load.estimator = "NoSuchModel";
  auto report = driver.Run(load);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace cardbench
