#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "datagen/stats_gen.h"
#include "storage/catalog.h"
#include "storage/csv.h"
#include "storage/filter.h"
#include "storage/stats.h"
#include "storage/table.h"

namespace cardbench {
namespace {

void FillSmallTable(Table& t) {
  EXPECT_TRUE(t.AddColumn("id", ColumnKind::kKey).ok());
  EXPECT_TRUE(t.AddColumn("x", ColumnKind::kNumeric).ok());
  EXPECT_TRUE(t.AppendRow({1, 10}).ok());
  EXPECT_TRUE(t.AppendRow({2, std::nullopt}).ok());
  EXPECT_TRUE(t.AppendRow({3, 30}).ok());
}

TEST(TableTest, AppendAndRead) {
  Table t("t");
  FillSmallTable(t);
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.column(0).Get(2), 3);
  EXPECT_FALSE(t.column(1).IsValid(1));
  EXPECT_TRUE(t.column(1).IsValid(2));
  EXPECT_EQ(t.column(1).null_count(), 1u);
}

TEST(TableTest, DuplicateColumnRejected) {
  Table t("t");
  EXPECT_TRUE(t.AddColumn("x", ColumnKind::kNumeric).ok());
  EXPECT_EQ(t.AddColumn("x", ColumnKind::kNumeric).code(),
            StatusCode::kAlreadyExists);
}

TEST(TableTest, RowWidthMismatchRejected) {
  Table t("t");
  FillSmallTable(t);
  EXPECT_EQ(t.AppendRow({1}).code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, FindColumn) {
  Table t("t");
  FillSmallTable(t);
  EXPECT_EQ(t.FindColumn("x").value(), 1u);
  EXPECT_FALSE(t.FindColumn("nope").has_value());
}

TEST(IndexTest, LookupSkipsNulls) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("k", ColumnKind::kKey).ok());
  ASSERT_TRUE(t.AppendRow({5}).ok());
  ASSERT_TRUE(t.AppendRow({std::nullopt}).ok());
  ASSERT_TRUE(t.AppendRow({5}).ok());
  ASSERT_TRUE(t.AppendRow({7}).ok());
  const HashIndex& idx = t.GetIndex(0);
  EXPECT_EQ(idx.num_entries(), 3u);
  EXPECT_EQ(idx.num_distinct(), 2u);
  EXPECT_EQ(idx.Lookup(5).size(), 2u);
  EXPECT_EQ(idx.Lookup(7).size(), 1u);
  EXPECT_TRUE(idx.Lookup(999).empty());
}

TEST(IndexTest, InvalidatedByAppend) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("k", ColumnKind::kKey).ok());
  ASSERT_TRUE(t.AppendRow({5}).ok());
  EXPECT_EQ(t.GetIndex(0).Lookup(5).size(), 1u);
  ASSERT_TRUE(t.AppendRow({5}).ok());
  EXPECT_EQ(t.GetIndex(0).Lookup(5).size(), 2u);
}

TEST(CatalogTest, AddAndFindTables) {
  Database db("test");
  ASSERT_TRUE(db.AddTable("a").ok());
  EXPECT_FALSE(db.AddTable("a").ok());
  EXPECT_NE(db.FindTable("a"), nullptr);
  EXPECT_EQ(db.FindTable("b"), nullptr);
  EXPECT_EQ(db.num_tables(), 1u);
}

TEST(CatalogTest, JoinRelationValidation) {
  Database db("test");
  Table* a = db.AddTable("a").value();
  Table* b = db.AddTable("b").value();
  ASSERT_TRUE(a->AddColumn("id", ColumnKind::kKey).ok());
  ASSERT_TRUE(b->AddColumn("a_id", ColumnKind::kKey).ok());
  EXPECT_TRUE(
      db.AddJoinRelation({"a", "id", "b", "a_id", JoinKind::kPkFk}).ok());
  EXPECT_FALSE(
      db.AddJoinRelation({"a", "id", "zzz", "a_id", JoinKind::kPkFk}).ok());
  EXPECT_FALSE(
      db.AddJoinRelation({"a", "nope", "b", "a_id", JoinKind::kPkFk}).ok());
}

TEST(CatalogTest, RelationsBetweenNormalizesOrientation) {
  Database db("test");
  Table* a = db.AddTable("a").value();
  Table* b = db.AddTable("b").value();
  ASSERT_TRUE(a->AddColumn("id", ColumnKind::kKey).ok());
  ASSERT_TRUE(b->AddColumn("a_id", ColumnKind::kKey).ok());
  ASSERT_TRUE(
      db.AddJoinRelation({"a", "id", "b", "a_id", JoinKind::kPkFk}).ok());
  const auto rels = db.RelationsBetween("b", "a");
  ASSERT_EQ(rels.size(), 1u);
  EXPECT_EQ(rels[0].left_table, "b");
  EXPECT_EQ(rels[0].left_column, "a_id");
}

TEST(StatsTest, BasicColumnStats) {
  Table t("t");
  FillSmallTable(t);
  const ColumnStats stats = ComputeColumnStats(t.column(1));
  EXPECT_EQ(stats.row_count, 3u);
  EXPECT_EQ(stats.null_count, 1u);
  EXPECT_EQ(stats.num_distinct, 2u);
  EXPECT_EQ(stats.min, 10);
  EXPECT_EQ(stats.max, 30);
  EXPECT_DOUBLE_EQ(stats.mean, 20.0);
}

TEST(StatsTest, SkewnessOfSymmetricDataIsZero) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("x", ColumnKind::kNumeric).ok());
  for (Value v : {1, 2, 2, 3}) ASSERT_TRUE(t.AppendRow({v}).ok());
  EXPECT_NEAR(ComputeColumnStats(t.column(0)).skewness, 0.0, 1e-9);
}

TEST(StatsTest, SkewnessPositiveForHeavyRightTail) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("x", ColumnKind::kNumeric).ok());
  for (Value v : {1, 1, 1, 1, 1, 1, 1, 1, 100}) {
    ASSERT_TRUE(t.AppendRow({v}).ok());
  }
  EXPECT_GT(ComputeColumnStats(t.column(0)).skewness, 1.0);
}

TEST(StatsTest, PearsonCorrelationDetectsLinearDependence) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("x", ColumnKind::kNumeric).ok());
  ASSERT_TRUE(t.AddColumn("y", ColumnKind::kNumeric).ok());
  ASSERT_TRUE(t.AddColumn("z", ColumnKind::kNumeric).ok());
  for (Value v = 0; v < 50; ++v) {
    ASSERT_TRUE(t.AppendRow({v, 2 * v + 1, (v * 37) % 11}).ok());
  }
  EXPECT_NEAR(PearsonCorrelation(t.column(0), t.column(1)), 1.0, 1e-9);
  EXPECT_LT(std::abs(PearsonCorrelation(t.column(0), t.column(2))), 0.4);
}

TEST(StatsTest, ValueFrequenciesIgnoreNulls) {
  Table t("t");
  FillSmallTable(t);
  const auto freqs = ValueFrequencies(t.column(1));
  EXPECT_EQ(freqs.size(), 2u);
  EXPECT_EQ(freqs.at(10), 1u);
}

TEST(CsvTest, RoundTripPreservesDataAndKinds) {
  Table t("t");
  FillSmallTable(t);
  const std::string path =
      (std::filesystem::temp_directory_path() / "cardbench_csv_test.csv")
          .string();
  ASSERT_TRUE(WriteTableCsv(t, path).ok());
  Table back("t2");
  ASSERT_TRUE(ReadTableCsv(back, path).ok());
  ASSERT_EQ(back.num_rows(), 3u);
  ASSERT_EQ(back.num_columns(), 2u);
  EXPECT_EQ(back.column(0).kind(), ColumnKind::kKey);
  EXPECT_EQ(back.column(1).kind(), ColumnKind::kNumeric);
  EXPECT_EQ(back.column(0).Get(1), 2);
  EXPECT_FALSE(back.column(1).IsValid(1));
  EXPECT_EQ(back.column(1).Get(2), 30);
  std::remove(path.c_str());
}

TEST(FullOuterJoinEstimateTest, GrowsWithChildTables) {
  StatsGenConfig config;
  config.scale = 0.05;
  auto db = GenerateStatsDatabase(config);
  size_t total_rows = 0;
  for (const auto& name : db->table_names()) {
    total_rows += db->TableOrDie(name).num_rows();
  }
  const double foj = EstimateFullOuterJoinSize(*db);
  // The FOJ must dwarf the base row count by orders of magnitude (the paper
  // quotes 3e16 against ~1M stored rows for the real STATS).
  EXPECT_GT(foj, 1e3 * static_cast<double>(total_rows));
}

// ------------------------------------------------------ batch filter kernels

constexpr CompareOp kAllOps[] = {CompareOp::kEq, CompareOp::kNeq,
                                 CompareOp::kLt, CompareOp::kLe,
                                 CompareOp::kGt, CompareOp::kGe};

/// Deterministic test column: values cycle through a small domain and every
/// 7th row (offset 3) is NULL.
Column MakeKernelColumn(size_t n) {
  Column col("c", ColumnKind::kNumeric);
  for (size_t i = 0; i < n; ++i) {
    if (i % 7 == 3) {
      col.AppendNull();
    } else {
      col.Append(static_cast<Value>((i * 37) % 50));
    }
  }
  return col;
}

TEST(FilterKernelTest, FilterRangeMatchesScalarForAllOps) {
  const Column col = MakeKernelColumn(300);
  for (CompareOp op : kAllOps) {
    std::vector<uint32_t> sel;
    const size_t count = col.FilterRange(10, 290, op, 25, &sel);
    std::vector<uint32_t> expected;
    for (size_t r = 10; r < 290; ++r) {
      if (col.IsValid(r) && EvalCompare(col.Get(r), op, 25)) {
        expected.push_back(static_cast<uint32_t>(r));
      }
    }
    EXPECT_EQ(count, expected.size()) << CompareOpName(op);
    EXPECT_EQ(sel, expected) << CompareOpName(op);
  }
}

TEST(FilterKernelTest, FilterRangeClampsEndAndAppends) {
  const Column col = MakeKernelColumn(100);
  std::vector<uint32_t> sel = {12345};  // pre-existing content is kept
  col.FilterRange(0, 100000, CompareOp::kGe, 0, &sel);
  ASSERT_FALSE(sel.empty());
  EXPECT_EQ(sel.front(), 12345u);
  // All 100 rows minus the NULLs pass `>= 0` (domain is non-negative).
  EXPECT_EQ(sel.size() - 1, 100 - col.null_count());
  EXPECT_EQ(sel.back(), 99u);
}

TEST(FilterKernelTest, FilterRowsCompactsInPlaceForAllOps) {
  const Column col = MakeKernelColumn(300);
  for (CompareOp op : kAllOps) {
    std::vector<uint32_t> sel;
    for (uint32_t r = 0; r < 300; r += 2) sel.push_back(r);
    const size_t kept = col.FilterRows(sel.data(), sel.size(), op, 25);
    sel.resize(kept);
    std::vector<uint32_t> expected;
    for (uint32_t r = 0; r < 300; r += 2) {
      if (col.IsValid(r) && EvalCompare(col.Get(r), op, 25)) {
        expected.push_back(r);
      }
    }
    EXPECT_EQ(sel, expected) << CompareOpName(op);
  }
}

TEST(FilterKernelTest, GatherReportsValuesAndNulls) {
  const Column col = MakeKernelColumn(50);
  const std::vector<uint32_t> rows = {3, 0, 49, 10, 17};
  std::vector<Value> keys(rows.size());
  std::vector<uint8_t> valid(rows.size());
  col.Gather(rows.data(), rows.size(), keys.data(), valid.data());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(valid[i] != 0, col.IsValid(rows[i])) << rows[i];
    if (valid[i]) EXPECT_EQ(keys[i], col.Get(rows[i])) << rows[i];
  }
}

TEST(FilterKernelTest, ConjunctionHelpersMatchScalar) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("a", ColumnKind::kNumeric).ok());
  ASSERT_TRUE(t.AddColumn("b", ColumnKind::kNumeric).ok());
  for (size_t i = 0; i < 500; ++i) {
    if (i % 11 == 5) {
      ASSERT_TRUE(t.AppendRow({static_cast<Value>(i % 40), std::nullopt}).ok());
    } else {
      ASSERT_TRUE(t.AppendRow({static_cast<Value>(i % 40),
                               static_cast<Value>(i % 13)}).ok());
    }
  }
  const std::vector<Predicate> preds = {
      {"t", "a", CompareOp::kGe, 10},
      {"t", "b", CompareOp::kLt, 9},
  };
  const auto compiled = CompilePredicates(t, preds);

  std::vector<uint32_t> expected;
  for (uint32_t r = 0; r < 500; ++r) {
    bool pass = true;
    for (const auto& p : preds) {
      const Column& col = t.ColumnByName(p.column);
      if (!col.IsValid(r) || !EvalCompare(col.Get(r), p.op, p.value)) {
        pass = false;
        break;
      }
    }
    if (pass) expected.push_back(r);
  }

  std::vector<uint32_t> sel;
  EXPECT_EQ(FilterRangeConjunction(compiled, 0, 500, &sel), expected.size());
  EXPECT_EQ(sel, expected);
  EXPECT_EQ(CountRangeConjunction(compiled, 0, 500), expected.size());

  std::vector<uint32_t> all(500);
  for (uint32_t r = 0; r < 500; ++r) all[r] = r;
  EXPECT_EQ(FilterRowsConjunction(compiled, &all), expected.size());
  EXPECT_EQ(all, expected);

  for (uint32_t r = 0; r < expected.size(); ++r) {
    EXPECT_TRUE(RowPassesCompiled(compiled, expected[r]));
  }

  // An empty conjunction admits the whole range.
  const std::vector<CompiledPredicate> none;
  EXPECT_EQ(CountRangeConjunction(none, 7, 123), 116u);
}

}  // namespace
}  // namespace cardbench
