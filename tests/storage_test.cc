#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "datagen/stats_gen.h"
#include "storage/catalog.h"
#include "storage/csv.h"
#include "storage/stats.h"
#include "storage/table.h"

namespace cardbench {
namespace {

void FillSmallTable(Table& t) {
  EXPECT_TRUE(t.AddColumn("id", ColumnKind::kKey).ok());
  EXPECT_TRUE(t.AddColumn("x", ColumnKind::kNumeric).ok());
  EXPECT_TRUE(t.AppendRow({1, 10}).ok());
  EXPECT_TRUE(t.AppendRow({2, std::nullopt}).ok());
  EXPECT_TRUE(t.AppendRow({3, 30}).ok());
}

TEST(TableTest, AppendAndRead) {
  Table t("t");
  FillSmallTable(t);
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.column(0).Get(2), 3);
  EXPECT_FALSE(t.column(1).IsValid(1));
  EXPECT_TRUE(t.column(1).IsValid(2));
  EXPECT_EQ(t.column(1).null_count(), 1u);
}

TEST(TableTest, DuplicateColumnRejected) {
  Table t("t");
  EXPECT_TRUE(t.AddColumn("x", ColumnKind::kNumeric).ok());
  EXPECT_EQ(t.AddColumn("x", ColumnKind::kNumeric).code(),
            StatusCode::kAlreadyExists);
}

TEST(TableTest, RowWidthMismatchRejected) {
  Table t("t");
  FillSmallTable(t);
  EXPECT_EQ(t.AppendRow({1}).code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, FindColumn) {
  Table t("t");
  FillSmallTable(t);
  EXPECT_EQ(t.FindColumn("x").value(), 1u);
  EXPECT_FALSE(t.FindColumn("nope").has_value());
}

TEST(IndexTest, LookupSkipsNulls) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("k", ColumnKind::kKey).ok());
  ASSERT_TRUE(t.AppendRow({5}).ok());
  ASSERT_TRUE(t.AppendRow({std::nullopt}).ok());
  ASSERT_TRUE(t.AppendRow({5}).ok());
  ASSERT_TRUE(t.AppendRow({7}).ok());
  const HashIndex& idx = t.GetIndex(0);
  EXPECT_EQ(idx.num_entries(), 3u);
  EXPECT_EQ(idx.num_distinct(), 2u);
  EXPECT_EQ(idx.Lookup(5).size(), 2u);
  EXPECT_EQ(idx.Lookup(7).size(), 1u);
  EXPECT_TRUE(idx.Lookup(999).empty());
}

TEST(IndexTest, InvalidatedByAppend) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("k", ColumnKind::kKey).ok());
  ASSERT_TRUE(t.AppendRow({5}).ok());
  EXPECT_EQ(t.GetIndex(0).Lookup(5).size(), 1u);
  ASSERT_TRUE(t.AppendRow({5}).ok());
  EXPECT_EQ(t.GetIndex(0).Lookup(5).size(), 2u);
}

TEST(CatalogTest, AddAndFindTables) {
  Database db("test");
  ASSERT_TRUE(db.AddTable("a").ok());
  EXPECT_FALSE(db.AddTable("a").ok());
  EXPECT_NE(db.FindTable("a"), nullptr);
  EXPECT_EQ(db.FindTable("b"), nullptr);
  EXPECT_EQ(db.num_tables(), 1u);
}

TEST(CatalogTest, JoinRelationValidation) {
  Database db("test");
  Table* a = db.AddTable("a").value();
  Table* b = db.AddTable("b").value();
  ASSERT_TRUE(a->AddColumn("id", ColumnKind::kKey).ok());
  ASSERT_TRUE(b->AddColumn("a_id", ColumnKind::kKey).ok());
  EXPECT_TRUE(
      db.AddJoinRelation({"a", "id", "b", "a_id", JoinKind::kPkFk}).ok());
  EXPECT_FALSE(
      db.AddJoinRelation({"a", "id", "zzz", "a_id", JoinKind::kPkFk}).ok());
  EXPECT_FALSE(
      db.AddJoinRelation({"a", "nope", "b", "a_id", JoinKind::kPkFk}).ok());
}

TEST(CatalogTest, RelationsBetweenNormalizesOrientation) {
  Database db("test");
  Table* a = db.AddTable("a").value();
  Table* b = db.AddTable("b").value();
  ASSERT_TRUE(a->AddColumn("id", ColumnKind::kKey).ok());
  ASSERT_TRUE(b->AddColumn("a_id", ColumnKind::kKey).ok());
  ASSERT_TRUE(
      db.AddJoinRelation({"a", "id", "b", "a_id", JoinKind::kPkFk}).ok());
  const auto rels = db.RelationsBetween("b", "a");
  ASSERT_EQ(rels.size(), 1u);
  EXPECT_EQ(rels[0].left_table, "b");
  EXPECT_EQ(rels[0].left_column, "a_id");
}

TEST(StatsTest, BasicColumnStats) {
  Table t("t");
  FillSmallTable(t);
  const ColumnStats stats = ComputeColumnStats(t.column(1));
  EXPECT_EQ(stats.row_count, 3u);
  EXPECT_EQ(stats.null_count, 1u);
  EXPECT_EQ(stats.num_distinct, 2u);
  EXPECT_EQ(stats.min, 10);
  EXPECT_EQ(stats.max, 30);
  EXPECT_DOUBLE_EQ(stats.mean, 20.0);
}

TEST(StatsTest, SkewnessOfSymmetricDataIsZero) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("x", ColumnKind::kNumeric).ok());
  for (Value v : {1, 2, 2, 3}) ASSERT_TRUE(t.AppendRow({v}).ok());
  EXPECT_NEAR(ComputeColumnStats(t.column(0)).skewness, 0.0, 1e-9);
}

TEST(StatsTest, SkewnessPositiveForHeavyRightTail) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("x", ColumnKind::kNumeric).ok());
  for (Value v : {1, 1, 1, 1, 1, 1, 1, 1, 100}) {
    ASSERT_TRUE(t.AppendRow({v}).ok());
  }
  EXPECT_GT(ComputeColumnStats(t.column(0)).skewness, 1.0);
}

TEST(StatsTest, PearsonCorrelationDetectsLinearDependence) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("x", ColumnKind::kNumeric).ok());
  ASSERT_TRUE(t.AddColumn("y", ColumnKind::kNumeric).ok());
  ASSERT_TRUE(t.AddColumn("z", ColumnKind::kNumeric).ok());
  for (Value v = 0; v < 50; ++v) {
    ASSERT_TRUE(t.AppendRow({v, 2 * v + 1, (v * 37) % 11}).ok());
  }
  EXPECT_NEAR(PearsonCorrelation(t.column(0), t.column(1)), 1.0, 1e-9);
  EXPECT_LT(std::abs(PearsonCorrelation(t.column(0), t.column(2))), 0.4);
}

TEST(StatsTest, ValueFrequenciesIgnoreNulls) {
  Table t("t");
  FillSmallTable(t);
  const auto freqs = ValueFrequencies(t.column(1));
  EXPECT_EQ(freqs.size(), 2u);
  EXPECT_EQ(freqs.at(10), 1u);
}

TEST(CsvTest, RoundTripPreservesDataAndKinds) {
  Table t("t");
  FillSmallTable(t);
  const std::string path =
      (std::filesystem::temp_directory_path() / "cardbench_csv_test.csv")
          .string();
  ASSERT_TRUE(WriteTableCsv(t, path).ok());
  Table back("t2");
  ASSERT_TRUE(ReadTableCsv(back, path).ok());
  ASSERT_EQ(back.num_rows(), 3u);
  ASSERT_EQ(back.num_columns(), 2u);
  EXPECT_EQ(back.column(0).kind(), ColumnKind::kKey);
  EXPECT_EQ(back.column(1).kind(), ColumnKind::kNumeric);
  EXPECT_EQ(back.column(0).Get(1), 2);
  EXPECT_FALSE(back.column(1).IsValid(1));
  EXPECT_EQ(back.column(1).Get(2), 30);
  std::remove(path.c_str());
}

TEST(FullOuterJoinEstimateTest, GrowsWithChildTables) {
  StatsGenConfig config;
  config.scale = 0.05;
  auto db = GenerateStatsDatabase(config);
  size_t total_rows = 0;
  for (const auto& name : db->table_names()) {
    total_rows += db->TableOrDie(name).num_rows();
  }
  const double foj = EstimateFullOuterJoinSize(*db);
  // The FOJ must dwarf the base row count by orders of magnitude (the paper
  // quotes 3e16 against ~1M stored rows for the real STATS).
  EXPECT_GT(foj, 1e3 * static_cast<double>(total_rows));
}

}  // namespace
}  // namespace cardbench
