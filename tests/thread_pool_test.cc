#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace cardbench {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  auto f = pool.Submit([] {});
  f.get();
}

TEST(ThreadPoolTest, TaskExceptionLandsInFutureNotWorker) {
  ThreadPool pool(2);
  auto bad = pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must still be alive and serving.
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++counter;
      });
    }
    pool.Shutdown();  // must wait for all 50, not drop queued work
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ShutdownIsIdempotentAndDestructorSafe) {
  ThreadPool pool(2);
  pool.Submit([] {}).get();
  pool.Shutdown();
  pool.Shutdown();  // second call is a no-op
  // Destructor runs another Shutdown when the scope closes.
}

TEST(ThreadPoolTest, SubmitAfterShutdownRejectsViaFuture) {
  ThreadPool pool(2);
  pool.Shutdown();
  auto f = pool.Submit([] {});
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(pool, hits.size(), [&hits](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(ParallelFor(pool, 16,
                           [](size_t i) {
                             if (i == 7) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

}  // namespace
}  // namespace cardbench
