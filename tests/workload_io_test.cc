#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "datagen/stats_gen.h"
#include "exec/true_card.h"
#include "workload/workload_gen.h"
#include "workload/workload_io.h"

namespace cardbench {
namespace {

class WorkloadIoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StatsGenConfig config;
    config.scale = 0.03;
    db_ = GenerateStatsDatabase(config).release();
  }
  static void TearDownTestSuite() { delete db_; }

  static Workload SmallWorkload() {
    TrueCardService svc(*db_);
    WorkloadOptions options = WorkloadOptions::StatsCeb();
    options.num_queries = 10;
    options.num_templates = 6;
    auto workload = GenerateWorkload(*db_, svc, "STATS-CEB", options);
    EXPECT_TRUE(workload.ok());
    return std::move(*workload);
  }

  static Database* db_;
};

Database* WorkloadIoTest::db_ = nullptr;

TEST_F(WorkloadIoTest, RoundTripPreservesQueries) {
  const Workload original = SmallWorkload();
  ASSERT_FALSE(original.queries.empty());
  const std::string path = ::testing::TempDir() + "/workload_io_test.sql";
  ASSERT_TRUE(WriteWorkloadSql(original, path).ok());

  auto restored = ReadWorkloadSql(*db_, path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->name, original.name);
  ASSERT_EQ(restored->queries.size(), original.queries.size());
  for (size_t i = 0; i < original.queries.size(); ++i) {
    EXPECT_EQ(restored->queries[i].CanonicalKey(),
              original.queries[i].CanonicalKey());
    EXPECT_EQ(restored->queries[i].name, original.queries[i].name);
  }
  std::filesystem::remove(path);
}

TEST_F(WorkloadIoTest, RejectsInvalidSql) {
  const std::string path = ::testing::TempDir() + "/workload_bad.sql";
  {
    std::ofstream out(path);
    out << "-- Q1\nSELECT COUNT(*) FROM nonexistent_table;\n";
  }
  EXPECT_FALSE(ReadWorkloadSql(*db_, path).ok());
  {
    std::ofstream out(path);
    out << "DROP TABLE users;\n";
  }
  EXPECT_FALSE(ReadWorkloadSql(*db_, path).ok());
  std::filesystem::remove(path);
}

TEST_F(WorkloadIoTest, SkipsBlankLinesAndHandlesMissingNames) {
  const std::string path = ::testing::TempDir() + "/workload_loose.sql";
  {
    std::ofstream out(path);
    out << "\n\nSELECT COUNT(*) FROM users WHERE users.Reputation >= 5;\n\n";
  }
  auto restored = ReadWorkloadSql(*db_, path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->queries.size(), 1u);
  EXPECT_TRUE(restored->queries[0].name.empty());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace cardbench
