#include <gtest/gtest.h>

#include <set>

#include "datagen/imdb_gen.h"
#include "datagen/stats_gen.h"
#include "exec/true_card.h"
#include "query/parser.h"
#include "workload/workload_gen.h"

namespace cardbench {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StatsGenConfig sc;
    sc.scale = 0.04;
    stats_ = GenerateStatsDatabase(sc).release();
    stats_cards_ = new TrueCardService(*stats_);
    ImdbGenConfig ic;
    ic.scale = 0.04;
    imdb_ = GenerateImdbDatabase(ic).release();
    imdb_cards_ = new TrueCardService(*imdb_);
  }
  static void TearDownTestSuite() {
    delete imdb_cards_;
    delete imdb_;
    delete stats_cards_;
    delete stats_;
  }

  static Database* stats_;
  static TrueCardService* stats_cards_;
  static Database* imdb_;
  static TrueCardService* imdb_cards_;
};

Database* WorkloadTest::stats_ = nullptr;
TrueCardService* WorkloadTest::stats_cards_ = nullptr;
Database* WorkloadTest::imdb_ = nullptr;
TrueCardService* WorkloadTest::imdb_cards_ = nullptr;

TEST_F(WorkloadTest, RandomTemplatesAreValidAcyclicJoins) {
  Rng rng(4242);
  for (int i = 0; i < 50; ++i) {
    const size_t tables = 2 + rng.NextUint64(6);
    auto tmpl = RandomJoinTemplate(*stats_, rng, tables, true);
    ASSERT_TRUE(tmpl.ok());
    EXPECT_EQ(tmpl->tables.size(), tables);
    EXPECT_EQ(tmpl->joins.size(), tables - 1);  // tree: acyclic + connected
    EXPECT_TRUE(ValidateQuery(*tmpl, *stats_).ok()) << tmpl->ToSql();
    // No table twice.
    std::set<std::string> unique(tmpl->tables.begin(), tmpl->tables.end());
    EXPECT_EQ(unique.size(), tables);
  }
}

TEST_F(WorkloadTest, PkFkOnlyTemplatesHaveNoFkFkEdges) {
  Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    auto tmpl = RandomJoinTemplate(*imdb_, rng, 3, /*allow_fk_fk=*/false);
    ASSERT_TRUE(tmpl.ok());
    for (const auto& edge : tmpl->joins) {
      // On the star schema every PK-FK edge touches title.id.
      const bool touches_title =
          (edge.left_table == "title" && edge.left_column == "id") ||
          (edge.right_table == "title" && edge.right_column == "id");
      EXPECT_TRUE(touches_title) << edge.ToString();
    }
  }
}

TEST_F(WorkloadTest, PredicatesReferenceQueryTablesAndRealValues) {
  Rng rng(12);
  auto tmpl = RandomJoinTemplate(*stats_, rng, 3, true);
  ASSERT_TRUE(tmpl.ok());
  Query q = std::move(*tmpl);
  AddRandomPredicates(*stats_, rng, 10, q);
  EXPECT_GE(q.predicates.size(), 5u);
  for (const auto& pred : q.predicates) {
    EXPECT_GE(q.TableIndex(pred.table), 0);
    const Column& col = stats_->TableOrDie(pred.table).ColumnByName(pred.column);
    EXPECT_TRUE(col.kind() == ColumnKind::kNumeric ||
                col.kind() == ColumnKind::kCategorical);
  }
  EXPECT_TRUE(ValidateQuery(q, *stats_).ok());
}

TEST_F(WorkloadTest, StatsCebShapeMatchesPaper) {
  WorkloadOptions options = WorkloadOptions::StatsCeb();
  options.num_queries = 40;  // scaled down for the test
  options.num_templates = 20;
  auto workload = GenerateWorkload(*stats_, *stats_cards_, "STATS-CEB", options);
  ASSERT_TRUE(workload.ok());
  EXPECT_GE(workload->queries.size(), 30u);

  size_t max_tables = 0, min_tables = 99;
  bool has_fk_fk_or_many = false;
  for (const auto& q : workload->queries) {
    ASSERT_TRUE(ValidateQuery(q, *stats_).ok()) << q.ToSql();
    max_tables = std::max(max_tables, q.tables.size());
    min_tables = std::min(min_tables, q.tables.size());
    if (q.tables.size() >= 6) has_fk_fk_or_many = true;
    auto card = stats_cards_->Card(q);
    ASSERT_TRUE(card.ok());
    EXPECT_GE(*card, options.min_true_card);
    EXPECT_LE(*card, options.max_true_card);
  }
  EXPECT_EQ(min_tables, 2u);
  EXPECT_GE(max_tables, 6u);
  EXPECT_TRUE(has_fk_fk_or_many);
}

TEST_F(WorkloadTest, WorkloadCardinalitiesSpreadWidely) {
  WorkloadOptions options = WorkloadOptions::StatsCeb();
  options.num_queries = 40;
  options.num_templates = 20;
  auto workload = GenerateWorkload(*stats_, *stats_cards_, "STATS-CEB", options);
  ASSERT_TRUE(workload.ok());
  double lo = 1e300, hi = 0;
  for (const auto& q : workload->queries) {
    const double card = *stats_cards_->Card(q);
    lo = std::min(lo, card);
    hi = std::max(hi, card);
  }
  EXPECT_GT(hi / std::max(lo, 1.0), 1e3);  // several orders of magnitude
}

TEST_F(WorkloadTest, DeterministicForSameSeed) {
  WorkloadOptions options = WorkloadOptions::JobLight();
  options.num_queries = 15;
  options.num_templates = 8;
  auto a = GenerateWorkload(*imdb_, *imdb_cards_, "JOB-LIGHT", options);
  auto b = GenerateWorkload(*imdb_, *imdb_cards_, "JOB-LIGHT", options);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->queries.size(), b->queries.size());
  for (size_t i = 0; i < a->queries.size(); ++i) {
    EXPECT_EQ(a->queries[i].CanonicalKey(), b->queries[i].CanonicalKey());
  }
}

TEST_F(WorkloadTest, JobLightStaysWithinFiveTables) {
  WorkloadOptions options = WorkloadOptions::JobLight();
  options.num_queries = 20;
  options.num_templates = 10;
  auto workload = GenerateWorkload(*imdb_, *imdb_cards_, "JOB-LIGHT", options);
  ASSERT_TRUE(workload.ok());
  for (const auto& q : workload->queries) {
    EXPECT_LE(q.tables.size(), 5u);
    EXPECT_LE(q.predicates.size(), 4u + 4u);  // <= 2 per column fold
  }
}

TEST_F(WorkloadTest, TrainingQueriesIncludeSingleTables) {
  auto training = GenerateTrainingQueries(*stats_, *stats_cards_, 120, 55);
  ASSERT_TRUE(training.ok());
  EXPECT_GE(training->size(), 100u);
  bool has_single = false, has_join = false;
  for (const auto& tq : *training) {
    if (tq.query.tables.size() == 1) has_single = true;
    if (tq.query.tables.size() >= 3) has_join = true;
    EXPECT_GE(tq.cardinality, 0.0);
  }
  EXPECT_TRUE(has_single);
  EXPECT_TRUE(has_join);
}

}  // namespace
}  // namespace cardbench
