// cardclient: a thin CLI over the cardserved wire protocol. Reads SQL
// queries one-per-line from stdin, sends each as a length-prefixed JSON
// frame and prints the bitmask-keyed sub-plan estimates; --metrics instead
// fetches the server's metrics page over HTTP on the same port.
//
//   echo "SELECT COUNT(*) FROM users WHERE users.Reputation >= 100;" |
//     build/tools/cardclient --port=9747 --estimator=PostgreSQL
//   build/tools/cardclient --port=9747 --metrics
//
// Exit status: 0 when every request succeeded, 1 on any failure — so smoke
// scripts can assert on it.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "server/client.h"
#include "server/protocol.h"

namespace cardbench {
namespace {

struct ClientFlags {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string estimator = "PostgreSQL";
  double deadline_ms = 0.0;
  bool metrics = false;
  bool metrics_json = false;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port=N [--host=ADDR] [--estimator=NAME]\n"
               "          [--deadline-ms=MS] [--metrics] [--metrics-json]\n"
               "SQL queries are read one per line from stdin.\n",
               argv0);
  return 1;
}

int Run(int argc, char** argv) {
  ClientFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--host=")) {
      flags.host = v;
    } else if (const char* v = value_of("--port=")) {
      flags.port = static_cast<uint16_t>(std::atoi(v));
    } else if (const char* v = value_of("--estimator=")) {
      flags.estimator = v;
    } else if (const char* v = value_of("--deadline-ms=")) {
      flags.deadline_ms = std::atof(v);
    } else if (arg == "--metrics") {
      flags.metrics = true;
    } else if (arg == "--metrics-json") {
      flags.metrics_json = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (flags.port == 0) return Usage(argv[0]);

  if (flags.metrics || flags.metrics_json) {
    auto body = FetchServerMetrics(
        flags.host, flags.port,
        flags.metrics_json ? "/metrics.json" : "/metrics");
    if (!body.ok()) {
      std::fprintf(stderr, "cardclient: %s\n",
                   body.status().ToString().c_str());
      return 1;
    }
    std::fputs(body->c_str(), stdout);
    return 0;
  }

  CardClient client;
  if (Status connected = client.Connect(flags.host, flags.port);
      !connected.ok()) {
    std::fprintf(stderr, "cardclient: %s\n", connected.ToString().c_str());
    return 1;
  }

  int failures = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty() || line[0] == '#') continue;
    ServerRequest request;
    request.estimator = flags.estimator;
    request.sql = line;
    request.deadline_ms = flags.deadline_ms;
    auto response = client.Call(request);
    if (!response.ok()) {
      std::fprintf(stderr, "cardclient: transport error: %s\n",
                   response.status().ToString().c_str());
      return 1;  // the connection is gone; later queries cannot proceed
    }
    if (!response->ok()) {
      std::printf("error %s: %s\n", StatusCodeName(response->code),
                  response->error.c_str());
      if (response->code == StatusCode::kResourceExhausted) {
        std::printf("  queue depth %llu, retry after %.1fms\n",
                    static_cast<unsigned long long>(response->queue_depth),
                    response->retry_after_ms);
      }
      ++failures;
      continue;
    }
    std::printf("%zu sub-plan estimate(s) in %.1fus (cache %llu/%llu):\n",
                response->cards.size(), response->elapsed_us,
                static_cast<unsigned long long>(response->cache_hits),
                static_cast<unsigned long long>(
                    response->cache_hits + response->cache_misses));
    for (const auto& [mask, card] : response->cards) {
      std::printf("  mask %llu: %.1f rows\n",
                  static_cast<unsigned long long>(mask), card);
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace cardbench

int main(int argc, char** argv) { return cardbench::Run(argc, argv); }
