// cardserve: a small serving front-end over the EstimationService. Builds
// the STATS environment, trains the requested estimators, then answers
// cardinality estimates for SQL queries read one-per-line from stdin. With
// no stdin input it instead replays the STATS-CEB workload once through the
// service and prints a serving report (throughput, tail latency, cache).
//
//   build/tools/cardserve --fast --estimators=PostgreSQL --threads=4
//   echo "SELECT COUNT(*) FROM users WHERE users.Reputation >= 100;" \
//     | build/tools/cardserve --fast

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/str_util.h"
#include "harness/bench_env.h"
#include "server/protocol.h"
#include "server/request_executor.h"
#include "service/estimation_service.h"
#include "service/load_driver.h"

namespace cardbench {
namespace {

void PrintCacheStats(const EstimationService& service) {
  const EstimateCacheStats stats = service.cache_stats();
  std::printf("cache: %llu hits / %llu misses (%.1f%% hit rate), "
              "%llu evictions\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              100.0 * stats.HitRate(),
              static_cast<unsigned long long>(stats.evictions));
}

/// Serves SQL queries from stdin through the same RequestExecutor +
/// protocol structs the network server uses — the CLI is the in-process
/// transport of the cardserved request path, not a parallel
/// implementation. Returns the number served.
size_t ServeStdin(RequestExecutor& executor,
                  const std::vector<std::string>& estimators) {
  size_t served = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty() || line[0] == '#') continue;
    auto graph = executor.Compile(line);
    if (!graph.ok()) {
      std::printf("invalid query: %s\n", graph.status().ToString().c_str());
      continue;
    }
    for (const std::string& name : estimators) {
      ServerRequest request;
      request.estimator = name;
      request.sql = line;
      request.subplan_mask = (*graph)->full_mask();
      const ServerResponse response = executor.ExecuteSync(request);
      if (!response.ok()) {
        std::printf("%-12s error: %s\n", name.c_str(),
                    response.ToStatus().ToString().c_str());
        continue;
      }
      const auto card = response.cards.find(request.subplan_mask);
      std::printf("%-12s %14.1f rows   (%s)\n", name.c_str(),
                  card == response.cards.end() ? 0.0 : card->second,
                  FormatDuration(response.elapsed_us * 1e-6).c_str());
    }
    ++served;
  }
  return served;
}

/// Replays the workload once through the service, per estimator. Clients
/// submit the harness's pre-compiled QueryGraphs, so the service runs its
/// mask-based dispatch and fingerprint-keyed cache path.
void ReplayWorkload(EstimationService& service, BenchEnv& env,
                    const std::vector<std::string>& estimators,
                    size_t concurrency) {
  std::vector<const QueryGraph*> graphs;
  for (const auto& ctx : env.query_contexts()) graphs.push_back(ctx.graph.get());
  std::printf("no stdin input — replaying %zu workload queries\n",
              graphs.size());
  for (const std::string& name : estimators) {
    LoadDriver driver(service, graphs);
    LoadOptions load;
    load.estimator = name;
    load.concurrency = concurrency;
    load.replays = 2;  // second pass exercises the sub-plan cache
    auto report = driver.Run(load);
    if (!report.ok()) {
      std::printf("%-12s replay failed: %s\n", name.c_str(),
                  report.status().ToString().c_str());
      continue;
    }
    std::printf("%-12s %8.1f QPS   p50 %s   p95 %s   p99 %s   "
                "hit rate %.1f%%   rejected %zu\n",
                name.c_str(), report->QueriesPerSecond(),
                FormatDuration(report->latency.p50).c_str(),
                FormatDuration(report->latency.p95).c_str(),
                FormatDuration(report->latency.p99).c_str(),
                100.0 * report->cache.HitRate(), report->rejected);
  }
}

int Run(const BenchFlags& flags) {
  auto env_result = BenchEnv::Create(BenchDataset::kStats, flags);
  CARDBENCH_CHECK(env_result.ok(), "env creation failed: %s",
                  env_result.status().ToString().c_str());
  BenchEnv& env = **env_result;

  std::vector<std::string> estimators = flags.estimators;
  if (estimators.empty()) estimators = {"PostgreSQL"};

  ServiceOptions options;
  options.num_threads = flags.threads;
  options.queue_depth = flags.queue_depth;
  EstimationService service(options);
  for (std::string& name : estimators) {
    ModelStoreStats stats;
    auto est = env.MakeNamedEstimator(name, &stats);
    CARDBENCH_CHECK(est.ok(), "estimator %s failed: %s", name.c_str(),
                    est.status().ToString().c_str());
    if (env.model_store() != nullptr) {
      // Cold-start path: a warm --model-dir swaps training for artifact
      // loads, so the service is serving in seconds instead of minutes.
      std::printf("cardserve: %s %s in %.2fs (%s)\n", name.c_str(),
                  stats.loaded ? "loaded" : "trained",
                  stats.loaded ? stats.load_seconds : stats.build_seconds,
                  stats.path.c_str());
    }
    // Registry name and the model's self-reported name may differ; serving
    // lookups go by the registered (self-reported) one.
    name = (*est)->name();
    service.RegisterEstimator(std::move(*est));
  }
  std::printf("cardserve: %zu worker(s), queue depth %zu, %zu estimator(s) "
              "on %s (exec: %zu thread(s), batch %zu)\n",
              service.num_threads(), service.queue_capacity(),
              estimators.size(), env.dataset_name().c_str(),
              flags.exec_threads, flags.batch_size);

  RequestExecutor executor(service, env.db());
  if (ServeStdin(executor, estimators) == 0) {
    ReplayWorkload(service, env, estimators,
                   std::max<size_t>(2, flags.threads * 2));
  }
  PrintCacheStats(service);
  return 0;
}

}  // namespace
}  // namespace cardbench

int main(int argc, char** argv) {
  const cardbench::BenchFlags flags = cardbench::ParseBenchFlags(argc, argv);
  return cardbench::Run(flags);
}
