// cardserved: the network-facing estimation server. Builds the STATS
// environment, trains (or loads) the requested estimators, then serves the
// wire protocol of src/server/protocol.h over TCP until SIGINT/SIGTERM,
// answering `GET /metrics` probes on the same port.
//
//   build/tools/cardserved --fast --estimators=PostgreSQL --port=9747
//   curl -s http://127.0.0.1:9747/metrics
//   kill -TERM <pid>   # graceful drain, then exit
//
// Server-specific flags (--port=, --host=, --snapshot=, --snapshot-period=,
// --drain-timeout=) are peeled off before the shared bench flags; 0 (the
// default port) binds an ephemeral port and prints it.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "harness/bench_env.h"
#include "server/server.h"
#include "service/estimation_service.h"

namespace cardbench {
namespace {

CardServer* g_server = nullptr;

void HandleSignal(int /*signo*/) {
  // Async-signal-safe by design: one atomic store + one write(2).
  if (g_server != nullptr) g_server->NotifyShutdown();
}

struct ServedFlags {
  ServerOptions server;
  std::vector<char*> passthrough;  // flags left for ParseBenchFlags
};

long ParseIntFlagOrDie(const char* value, const char* flag, long min_value,
                       long max_value) {
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || parsed < min_value ||
      parsed > max_value) {
    std::fprintf(stderr, "%s must be an integer in [%ld, %ld], got %s=%s\n",
                 flag, min_value, max_value, flag, value);
    std::exit(2);
  }
  return parsed;
}

double ParseSecondsFlagOrDie(const char* value, const char* flag) {
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0' || errno == ERANGE || parsed < 0.0) {
    std::fprintf(stderr, "%s must be a non-negative number, got %s=%s\n", flag,
                 flag, value);
    std::exit(2);
  }
  return parsed;
}

ServedFlags SplitFlags(int argc, char** argv) {
  ServedFlags flags;
  flags.passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--port=")) {
      flags.server.port =
          static_cast<uint16_t>(ParseIntFlagOrDie(v, "--port", 0, 65535));
    } else if (const char* v = value_of("--host=")) {
      flags.server.host = v;
    } else if (const char* v = value_of("--snapshot=")) {
      flags.server.snapshot_path = v;
      if (flags.server.snapshot_period_seconds <= 0.0) {
        flags.server.snapshot_period_seconds = 5.0;
      }
    } else if (const char* v = value_of("--snapshot-period=")) {
      flags.server.snapshot_period_seconds =
          ParseSecondsFlagOrDie(v, "--snapshot-period");
    } else if (const char* v = value_of("--drain-timeout=")) {
      flags.server.drain_timeout_seconds =
          ParseSecondsFlagOrDie(v, "--drain-timeout");
    } else {
      flags.passthrough.push_back(argv[i]);
    }
  }
  return flags;
}

int Run(int argc, char** argv) {
  ServedFlags served = SplitFlags(argc, argv);
  const BenchFlags flags = ParseBenchFlags(
      static_cast<int>(served.passthrough.size()), served.passthrough.data());

  auto env_result = BenchEnv::Create(BenchDataset::kStats, flags);
  CARDBENCH_CHECK(env_result.ok(), "env creation failed: %s",
                  env_result.status().ToString().c_str());
  BenchEnv& env = **env_result;

  std::vector<std::string> estimators = flags.estimators;
  if (estimators.empty()) estimators = {"PostgreSQL"};

  ServiceOptions options;
  options.num_threads = flags.threads;
  options.queue_depth = flags.queue_depth;
  EstimationService service(options);
  for (std::string& name : estimators) {
    ModelStoreStats stats;
    auto est = env.MakeNamedEstimator(name, &stats);
    CARDBENCH_CHECK(est.ok(), "estimator %s failed: %s", name.c_str(),
                    est.status().ToString().c_str());
    name = (*est)->name();
    service.RegisterEstimator(std::move(*est));
  }

  CardServer server(service, env.db(), served.server);
  if (Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "cardserved: start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::string names;
  for (const std::string& name : estimators) {
    if (!names.empty()) names += ",";
    names += name;
  }
  // The smoke script scrapes this exact line for the resolved port.
  std::printf("cardserved: listening on %s:%u (%zu worker(s), queue depth "
              "%zu, estimators %s)\n",
              served.server.host.c_str(), server.port(),
              service.num_threads(), service.queue_capacity(),
              names.c_str());
  std::fflush(stdout);

  server.Wait();
  g_server = nullptr;

  const ServerCounters& counters = server.metrics().counters();
  std::printf("cardserved: served %llu request(s) (%llu completed, %llu "
              "rejected, %llu deadline, %llu failed), %llu HTTP probe(s); "
              "%zu in flight at exit\n",
              static_cast<unsigned long long>(counters.requests_received.load()),
              static_cast<unsigned long long>(counters.completed.load()),
              static_cast<unsigned long long>(counters.rejected.load()),
              static_cast<unsigned long long>(counters.deadline_exceeded.load()),
              static_cast<unsigned long long>(counters.failed.load()),
              static_cast<unsigned long long>(counters.http_requests.load()),
              server.in_flight());
  return 0;
}

}  // namespace
}  // namespace cardbench

int main(int argc, char** argv) { return cardbench::Run(argc, argv); }
