// Validates bench artifact files (bench_*.json) against the repo's minimal
// schema, so a formatting bug in a bench's hand-rolled JSON writer fails
// the test suite instead of silently corrupting downstream analysis.
//
// Schema (deliberately small — it must hold for every artifact the benches
// emit, object-shaped or array-shaped):
//   - the file parses as strict JSON (no trailing garbage, finite numbers);
//   - the top-level value is a non-empty object or a non-empty array of
//     objects;
//   - object keys are non-empty and unique per object;
//   - when a "bench" key is present it is a non-empty string;
//   - when a "cpu" key is present it is an object with non-empty "model"
//     and "simd" strings (the provenance stamp every bench JSON records so
//     perf numbers are comparable across machines).
//
// Usage: check_bench_json FILE...   (exit 0 iff every file validates)

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "common/json.h"

namespace cardbench {
namespace {

Status ValidateObject(const JsonValue& value) {
  std::set<std::string> keys;
  for (const auto& [key, child] : value.object) {
    if (key.empty()) return Status::InvalidArgument("empty object key");
    if (!keys.insert(key).second) {
      return Status::InvalidArgument("duplicate key \"" + key + "\"");
    }
    if (child.kind == JsonValue::Kind::kObject) {
      CARDBENCH_RETURN_IF_ERROR(ValidateObject(child));
    } else if (child.kind == JsonValue::Kind::kArray) {
      for (const auto& element : child.array) {
        if (element.kind == JsonValue::Kind::kObject) {
          CARDBENCH_RETURN_IF_ERROR(ValidateObject(element));
        }
      }
    }
  }
  const JsonValue* bench = value.Find("bench");
  if (bench != nullptr &&
      (bench->kind != JsonValue::Kind::kString || bench->string.empty())) {
    return Status::InvalidArgument("\"bench\" must be a non-empty string");
  }
  const JsonValue* cpu = value.Find("cpu");
  if (cpu != nullptr) {
    if (cpu->kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument("\"cpu\" must be an object");
    }
    for (const char* field : {"model", "simd"}) {
      const JsonValue* v = cpu->Find(field);
      if (v == nullptr || v->kind != JsonValue::Kind::kString ||
          v->string.empty()) {
        return Status::InvalidArgument(std::string("\"cpu\" needs a non-empty "
                                                   "string \"") +
                                       field + "\"");
      }
    }
  }
  return Status::OK();
}

Status ValidateFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (text.empty()) return Status::InvalidArgument("empty file");

  JsonParser parser(text);
  auto parsed = parser.Parse();
  if (!parsed.ok()) return parsed.status();

  if (parsed->kind == JsonValue::Kind::kObject) {
    if (parsed->object.empty()) {
      return Status::InvalidArgument("top-level object is empty");
    }
    return ValidateObject(*parsed);
  }
  if (parsed->kind == JsonValue::Kind::kArray) {
    if (parsed->array.empty()) {
      return Status::InvalidArgument("top-level array is empty");
    }
    for (const auto& element : parsed->array) {
      if (element.kind != JsonValue::Kind::kObject) {
        return Status::InvalidArgument(
            "top-level array elements must be objects");
      }
      CARDBENCH_RETURN_IF_ERROR(ValidateObject(element));
    }
    return Status::OK();
  }
  return Status::InvalidArgument(
      "top-level value must be an object or an array");
}

}  // namespace
}  // namespace cardbench

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE...\n", argv[0]);
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    const cardbench::Status status = cardbench::ValidateFile(argv[i]);
    if (status.ok()) {
      std::printf("OK   %s\n", argv[i]);
    } else {
      std::printf("FAIL %s: %s\n", argv[i], status.ToString().c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
