// Perf regression gate over the kernel and join layers' micro-bench
// artifacts.
//
//   check_perf_floor FLOOR.json MEASURED.json [MEASURED.json ...]
//
// FLOOR.json (checked in as bench/perf_floor.json) pins the minimum
// acceptable vector-tier speedups and join-table throughput:
//   {
//     "kernel_floors": [
//       {"kernel": "dot", "level": "avx2", "min_speedup_vs_scalar": 2.0}, ...
//     ],
//     "join_floors": [
//       {"rows": 262144, "radix_bits": 4, "threads": 4,
//        "max_build_ns_per_row": 60, "max_probe_ns_per_row": 40,
//        "min_probe_speedup_vs_legacy": 2.0}, ...
//     ],
//     "counter_floors": {"min_ipc": 1.0, "max_branch_miss_rate": 0.05,
//                        "max_cache_miss_rate": 0.2}
//   }
// Each MEASURED file is dispatched by content: a "bench" of
// "bench_kernels" is checked against kernel_floors, "bench_micro_join"
// against join_floors, and a file carrying a "counters" object
// (scripts/perf_stat.sh output) against counter_floors. A floor whose
// measurement point is absent — e.g. an avx512 floor on an avx2-only host,
// or a sweep point the quick bench mode skips — is reported as SKIP, so
// the gate is portable across machines. Counter floors are enforced only
// when the counters object is non-null (perf may be unavailable in
// containers — that run records null and the gate degrades to the other
// floors).
//
// Exit 0 iff every applicable floor holds.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.h"

namespace cardbench {
namespace {

Result<JsonValue> LoadJson(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();  // JsonParser keeps a reference
  JsonParser parser(text);
  return parser.Parse();
}

/// Measured speedup of (kernel, level), or -1 when the pair is absent.
double FindSpeedup(const JsonValue& measured, const std::string& kernel,
                   const std::string& level) {
  const JsonValue* rows = measured.Find("rows");
  if (rows == nullptr || rows->kind != JsonValue::Kind::kArray) return -1.0;
  for (const JsonValue& row : rows->array) {
    if (JsonStringOr(row.Find("kernel"), "") == kernel &&
        JsonStringOr(row.Find("level"), "") == level) {
      return JsonNumberOr(row.Find("speedup_vs_scalar"), -1.0);
    }
  }
  return -1.0;
}

int CheckKernelFloors(const JsonValue& floor, const JsonValue& measured) {
  const JsonValue* floors = floor.Find("kernel_floors");
  if (floors == nullptr || floors->kind != JsonValue::Kind::kArray) {
    std::fprintf(stderr, "floor file has no \"kernel_floors\" array\n");
    return 1;
  }
  int failures = 0;
  int checked = 0, skipped = 0;
  for (const JsonValue& f : floors->array) {
    const std::string kernel = JsonStringOr(f.Find("kernel"), "");
    const std::string level = JsonStringOr(f.Find("level"), "");
    const double min_speedup =
        JsonNumberOr(f.Find("min_speedup_vs_scalar"), 0.0);
    if (kernel.empty() || level.empty() || min_speedup <= 0.0) {
      std::fprintf(stderr, "malformed kernel floor entry\n");
      ++failures;
      continue;
    }
    const double got = FindSpeedup(measured, kernel, level);
    if (got < 0.0) {
      // Level not available on this host/build: floor does not apply.
      std::printf("SKIP %-14s %-8s (not measured on this host)\n",
                  kernel.c_str(), level.c_str());
      ++skipped;
      continue;
    }
    ++checked;
    if (got < min_speedup) {
      std::printf("FAIL %-14s %-8s speedup %.2fx < floor %.2fx\n",
                  kernel.c_str(), level.c_str(), got, min_speedup);
      ++failures;
    } else {
      std::printf("OK   %-14s %-8s speedup %.2fx >= floor %.2fx\n",
                  kernel.c_str(), level.c_str(), got, min_speedup);
    }
  }
  if (checked == 0 && skipped > 0) {
    // A host where nothing applies (pure-scalar build) passes vacuously,
    // but an empty floor list or an empty measurement is suspicious.
    std::printf("all %d floors skipped (scalar-only host/build)\n", skipped);
  }
  return failures;
}

/// The bench_micro_join config matching (rows, radix_bits, threads), or
/// nullptr when the sweep did not include that point.
const JsonValue* FindJoinConfig(const JsonValue& measured, double rows,
                                double radix_bits, double threads) {
  const JsonValue* configs = measured.Find("configs");
  if (configs == nullptr || configs->kind != JsonValue::Kind::kArray) {
    return nullptr;
  }
  for (const JsonValue& c : configs->array) {
    if (JsonNumberOr(c.Find("rows"), -1.0) == rows &&
        JsonNumberOr(c.Find("radix_bits"), -1.0) == radix_bits &&
        JsonNumberOr(c.Find("threads"), -1.0) == threads) {
      return &c;
    }
  }
  return nullptr;
}

int CheckJoinFloors(const JsonValue& floor, const JsonValue& measured) {
  const JsonValue* floors = floor.Find("join_floors");
  if (floors == nullptr || floors->kind != JsonValue::Kind::kArray) {
    std::fprintf(stderr, "floor file has no \"join_floors\" array\n");
    return 1;
  }
  int failures = 0;
  for (const JsonValue& f : floors->array) {
    const double rows = JsonNumberOr(f.Find("rows"), -1.0);
    const double radix_bits = JsonNumberOr(f.Find("radix_bits"), -1.0);
    const double threads = JsonNumberOr(f.Find("threads"), -1.0);
    if (rows < 0.0 || radix_bits < 0.0 || threads < 0.0) {
      std::fprintf(stderr, "malformed join floor entry\n");
      ++failures;
      continue;
    }
    char label[96];
    std::snprintf(label, sizeof(label), "join r%.0f b%.0f t%.0f", rows,
                  radix_bits, threads);
    const JsonValue* config =
        FindJoinConfig(measured, rows, radix_bits, threads);
    if (config == nullptr) {
      std::printf("SKIP %-24s (not measured in this run)\n", label);
      continue;
    }
    const struct {
      const char* metric;
      const char* bound;
      bool is_ceiling;
    } kBounds[] = {
        {"build_ns_per_row", "max_build_ns_per_row", true},
        {"probe_ns_per_row", "max_probe_ns_per_row", true},
        {"probe_speedup_vs_legacy", "min_probe_speedup_vs_legacy", false},
    };
    for (const auto& b : kBounds) {
      const double bound = JsonNumberOr(f.Find(b.bound), 0.0);
      if (bound <= 0.0) continue;  // bound not pinned for this point
      const double got = JsonNumberOr(config->Find(b.metric), -1.0);
      if (got < 0.0) {
        std::printf("FAIL %-24s %s missing from measurement\n", label,
                    b.metric);
        ++failures;
        continue;
      }
      const bool ok = b.is_ceiling ? got <= bound : got >= bound;
      std::printf("%s %-24s %s %.2f %s %.2f\n", ok ? "OK  " : "FAIL", label,
                  b.metric, got, b.is_ceiling ? "<= ceiling" : ">= floor",
                  bound);
      if (!ok) ++failures;
    }
  }
  return failures;
}

int CheckCounterFloors(const JsonValue& floor, const JsonValue& counters) {
  const JsonValue* limits = floor.Find("counter_floors");
  if (limits == nullptr || limits->kind != JsonValue::Kind::kObject) return 0;
  const JsonValue* c = counters.Find("counters");
  if (c == nullptr || c->kind != JsonValue::Kind::kObject) {
    std::printf("counters unavailable (perf not usable here); counter floors "
                "not enforced\n");
    return 0;
  }
  int failures = 0;
  const double ipc = JsonNumberOr(c->Find("ipc"), -1.0);
  const double min_ipc = JsonNumberOr(limits->Find("min_ipc"), 0.0);
  if (min_ipc > 0.0 && ipc >= 0.0) {
    if (ipc < min_ipc) {
      std::printf("FAIL ipc %.3f < floor %.3f\n", ipc, min_ipc);
      ++failures;
    } else {
      std::printf("OK   ipc %.3f >= floor %.3f\n", ipc, min_ipc);
    }
  }
  const struct {
    const char* counter;
    const char* limit;
  } kRates[] = {{"branch_miss_rate", "max_branch_miss_rate"},
                {"cache_miss_rate", "max_cache_miss_rate"}};
  for (const auto& r : kRates) {
    const double rate = JsonNumberOr(c->Find(r.counter), -1.0);
    const double max_rate = JsonNumberOr(limits->Find(r.limit), 0.0);
    if (max_rate <= 0.0 || rate < 0.0) continue;
    if (rate > max_rate) {
      std::printf("FAIL %s %.4f > ceiling %.4f\n", r.counter, rate, max_rate);
      ++failures;
    } else {
      std::printf("OK   %s %.4f <= ceiling %.4f\n", r.counter, rate, max_rate);
    }
  }
  return failures;
}

int Run(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s FLOOR.json MEASURED.json [MEASURED.json ...]\n",
                 argv[0]);
    return 2;
  }
  auto floor = LoadJson(argv[1]);
  if (!floor.ok()) {
    std::fprintf(stderr, "floor: %s\n", floor.status().ToString().c_str());
    return 2;
  }
  int failures = 0;
  for (int i = 2; i < argc; ++i) {
    auto measured = LoadJson(argv[i]);
    if (!measured.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[i],
                   measured.status().ToString().c_str());
      return 2;
    }
    const std::string bench = JsonStringOr(measured->Find("bench"), "");
    if (bench == "bench_kernels") {
      failures += CheckKernelFloors(*floor, *measured);
    } else if (bench == "bench_micro_join") {
      failures += CheckJoinFloors(*floor, *measured);
    } else if (measured->Find("counters") != nullptr) {
      failures += CheckCounterFloors(*floor, *measured);
    } else {
      std::fprintf(stderr,
                   "%s: unrecognized measurement (no known \"bench\" tag and "
                   "no \"counters\" object)\n",
                   argv[i]);
      return 2;
    }
  }
  if (failures != 0) {
    std::printf("check_perf_floor: %d floor(s) violated\n", failures);
    return 1;
  }
  std::printf("check_perf_floor: all applicable floors hold\n");
  return 0;
}

}  // namespace
}  // namespace cardbench

int main(int argc, char** argv) { return cardbench::Run(argc, argv); }
