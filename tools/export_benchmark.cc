// Exports the synthetic benchmark artifacts for external inspection or
// reuse: every table of both datasets as CSV, both query workloads as SQL
// files, and the memoized true cardinalities. This is the repo's analogue
// of the paper's published benchmark artifact (STATS dump + STATS-CEB SQL
// + sub-plan true cardinalities).
//
//   ./build/tools/export_benchmark --scale=1.0 --out=exported/

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/logging.h"
#include "common/str_util.h"
#include "harness/bench_env.h"
#include "storage/csv.h"
#include "workload/workload_io.h"

namespace cardbench {
namespace {

Status ExportDataset(BenchDataset dataset, const BenchFlags& flags,
                     const std::string& out_dir) {
  CARDBENCH_ASSIGN_OR_RETURN(std::unique_ptr<BenchEnv> env,
                             BenchEnv::Create(dataset, flags));
  const std::string dir = out_dir + "/" + ToLower(env->dataset_name());
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);

  for (const auto& name : env->db().table_names()) {
    const std::string path = dir + "/" + name + ".csv";
    CARDBENCH_RETURN_IF_ERROR(
        WriteTableCsv(env->db().TableOrDie(name), path));
    std::printf("wrote %-40s (%zu rows)\n", path.c_str(),
                env->db().TableOrDie(name).num_rows());
  }
  const std::string sql_path = dir + "/workload.sql";
  CARDBENCH_RETURN_IF_ERROR(WriteWorkloadSql(env->workload(), sql_path));
  std::printf("wrote %-40s (%zu queries)\n", sql_path.c_str(),
              env->workload().queries.size());
  const std::string cards_path = dir + "/true_cardinalities.tsv";
  CARDBENCH_RETURN_IF_ERROR(env->truecard().SaveCache(cards_path));
  std::printf("wrote %-40s (%zu sub-plan cardinalities)\n",
              cards_path.c_str(), env->truecard().cache_size());
  return Status::OK();
}

}  // namespace
}  // namespace cardbench

int main(int argc, char** argv) {
  using namespace cardbench;
  // Accept --out= in addition to the common flags.
  std::string out_dir = "exported";
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (StartsWith(argv[i], "--out=")) {
      out_dir = std::string(argv[i]).substr(6);
    } else {
      rest.push_back(argv[i]);
    }
  }
  const BenchFlags flags =
      ParseBenchFlags(static_cast<int>(rest.size()), rest.data());

  for (BenchDataset dataset : {BenchDataset::kStats, BenchDataset::kImdb}) {
    const Status status = ExportDataset(dataset, flags, out_dir);
    if (!status.ok()) {
      std::fprintf(stderr, "export failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
